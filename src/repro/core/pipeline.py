"""The TeMCO compiler pipeline (paper Figure 6).

Stage order follows the paper: *skip connection optimization* first
(it creates the copied restore chains), then *layer transformations*
(merging or splitting the concat/add joins so the chains expose
``lconv → act → fconv`` patterns), then *activation layer fusion*
(collapsing every exposed pattern into a tiled fused kernel), and a
final dead-code sweep.

Use :func:`optimize` for the one-call API, or :class:`TeMCOCompiler`
to run/inspect individual stages.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import Callable

from ..ir.graph import Graph
from ..obs import get_tracer
from .fusion import FusionConfig, FusionStats, fuse_activation_layers
from .liveness import estimate_peak_internal
from .scheduling import ScheduleStats, reschedule
from .skip_opt import SkipOptConfig, SkipOptStats, optimize_skip_connections
from .transform import (TransformStats, commute_upsample_lconv,
                        merge_lconv_add, merge_lconv_concat,
                        push_act_through_concat, split_concat_fconv)

__all__ = ["TeMCOConfig", "OptimizationReport", "TeMCOCompiler", "optimize"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class TeMCOConfig:
    """End-to-end optimization configuration.

    ``concat_strategy`` selects Figure 9's path for concat joins:
    ``"merge"`` builds the block-diagonal merged lconv (one fused kernel
    per join — the paper's default for DenseNet/UNet), ``"split"``
    produces per-branch convolutions plus add (more kernels, no weight
    growth), ``"none"`` leaves concats alone.
    """

    enable_skip_opt: bool = True
    enable_transforms: bool = True
    enable_fusion: bool = True
    #: memory-aware greedy rescheduling after fusion (extension: the
    #: paper defers to layer-scheduling work [19, 31, 50]); the pass is
    #: peak-guarded so enabling it can never hurt
    enable_scheduling: bool = True
    concat_strategy: str = "merge"
    skip_opt: SkipOptConfig = field(default_factory=SkipOptConfig)
    fusion: FusionConfig = field(default_factory=FusionConfig)

    def __post_init__(self) -> None:
        if self.concat_strategy not in ("merge", "split", "none"):
            raise ValueError(f"bad concat_strategy {self.concat_strategy!r}")


@dataclass
class OptimizationReport:
    """Per-stage statistics plus before/after peak estimates."""

    peak_before: int = 0
    peak_after: int = 0
    weight_bytes_before: int = 0
    weight_bytes_after: int = 0
    skip_opt: SkipOptStats | None = None
    transforms: TransformStats | None = None
    fusion: FusionStats | None = None
    schedule: ScheduleStats | None = None

    @property
    def peak_reduction(self) -> float:
        """Fractional reduction of estimated peak internal memory."""
        if self.peak_before == 0:
            return 0.0
        return 1.0 - self.peak_after / self.peak_before

    def summary(self) -> str:
        mib = 1024 * 1024
        lines = [
            f"peak internal: {self.peak_before / mib:.2f} MiB -> "
            f"{self.peak_after / mib:.2f} MiB ({self.peak_reduction:.1%} reduction)",
            f"weights: {self.weight_bytes_before / mib:.2f} MiB -> "
            f"{self.weight_bytes_after / mib:.2f} MiB",
        ]
        if self.skip_opt:
            s = self.skip_opt
            lines.append(f"skip-opt: {s.optimized}/{s.candidates} connections "
                         f"optimized, {s.copies_inserted} restore copies")
        if self.transforms:
            t = self.transforms
            lines.append(f"transforms: {t.merged_concats} concat merges, "
                         f"{t.merged_adds} add merges, {t.split_concats} splits, "
                         f"{t.commuted_upsamples} upsample commutes")
        if self.fusion:
            f_ = self.fusion
            lines.append(f"fusion: {f_.fused} fused kernels "
                         f"({f_.with_pool} with pool, {f_.with_upsample} with upsample)")
        if self.schedule and self.schedule.changed:
            lines.append(f"scheduling: peak {self.schedule.peak_before:,} B -> "
                         f"{self.schedule.peak_after:,} B")
        return "\n".join(lines)


class TeMCOCompiler:
    """Stage-by-stage driver over a working copy of the input graph.

    Parameters
    ----------
    tuner:
        Optional hook the fusion stage consults for measured tile
        choices: a callable ``(graph) -> {lconv_name: (block_size,
        spatial_tile)} | None`` (typically
        :func:`repro.tune.cached_overrides` curried over a cache).
        Returned overrides are merged over ``config.fusion``'s own.
    """

    def __init__(self, config: TeMCOConfig | None = None, *,
                 tuner: Callable[[Graph], dict | None] | None = None) -> None:
        self.config = config or TeMCOConfig()
        self.tuner = tuner

    def _fusion_config(self, graph: Graph, config: TeMCOConfig) -> FusionConfig:
        """The fusion knobs for this run, tuned if the tuner has data."""
        if self.tuner is None:
            return config.fusion
        overrides = self.tuner(graph)
        if not overrides:
            return config.fusion
        merged = dict(config.fusion.site_overrides or {})
        merged.update(overrides)
        get_tracer().decision("pipeline", graph.name, "tuned_fusion",
                              "tuner_overrides", sites=len(overrides))
        logger.info("pipeline: %s fusing with %d tuned site overrides",
                    graph.name, len(overrides))
        return replace(config.fusion, site_overrides=merged)

    def run(self, graph: Graph) -> tuple[Graph, OptimizationReport]:
        """Optimize a (typically decomposed) graph; the input is untouched.

        Skip-connection rewrites only pay off once the transform/fusion
        stages collapse the copied restore chains, so the per-rewrite
        guard is local (Algorithm 1's ``Overhead``); as a global
        safety net, if the fully optimized graph's estimated peak ends
        up worse than running the pipeline *without* skip-opt, the
        compiler falls back to the latter.
        """
        tracer = get_tracer()
        with tracer.span("pipeline", category="compiler", graph=graph.name):
            optimized, report = self._run_once(graph, self.config)
            if (self.config.enable_skip_opt
                    and report.skip_opt is not None
                    and report.skip_opt.optimized > 0):
                no_skip = TeMCOConfig(
                    enable_skip_opt=False,
                    enable_transforms=self.config.enable_transforms,
                    enable_fusion=self.config.enable_fusion,
                    enable_scheduling=self.config.enable_scheduling,
                    concat_strategy=self.config.concat_strategy,
                    skip_opt=self.config.skip_opt,
                    fusion=self.config.fusion)
                alt, alt_report = self._run_once(graph, no_skip)
                if alt_report.peak_after < report.peak_after:
                    tracer.decision(
                        "pipeline", graph.name, "fallback", "no_skip_better",
                        with_skip_peak_bytes=report.peak_after,
                        without_skip_peak_bytes=alt_report.peak_after)
                    logger.info("pipeline: %s kept the no-skip-opt variant "
                                "(peak %d B < %d B)", graph.name,
                                alt_report.peak_after, report.peak_after)
                    optimized, report = alt, alt_report
            if (report.peak_after > report.peak_before
                    and (self.config.enable_skip_opt or self.config.enable_transforms)
                    and self.config.enable_fusion):
                # last-resort guard: fusion alone only ever removes tensors
                fusion_only = TeMCOConfig(
                    enable_skip_opt=False, enable_transforms=False,
                    enable_fusion=True,
                    enable_scheduling=self.config.enable_scheduling,
                    concat_strategy="none", fusion=self.config.fusion)
                alt, alt_report = self._run_once(graph, fusion_only)
                if alt_report.peak_after < report.peak_after:
                    tracer.decision(
                        "pipeline", graph.name, "fallback", "fusion_only_better",
                        full_pipeline_peak_bytes=report.peak_after,
                        fusion_only_peak_bytes=alt_report.peak_after)
                    logger.info("pipeline: %s fell back to fusion-only "
                                "(peak %d B < %d B)", graph.name,
                                alt_report.peak_after, report.peak_after)
                    return alt, alt_report
            tracer.metrics.gauge("pipeline.peak_before_bytes", report.peak_before)
            tracer.metrics.gauge("pipeline.peak_after_bytes", report.peak_after)
            tracer.metrics.gauge("pipeline.peak_reduction", report.peak_reduction)
        return optimized, report

    def _run_once(self, graph: Graph,
                  config: TeMCOConfig) -> tuple[Graph, OptimizationReport]:
        tracer = get_tracer()
        work = graph.clone(f"{graph.name}.temco")
        report = OptimizationReport(
            peak_before=estimate_peak_internal(work),
            weight_bytes_before=work.weight_bytes())

        if config.enable_skip_opt:
            report.skip_opt = optimize_skip_connections(work, config.skip_opt)

        if config.enable_transforms:
            tstats = TransformStats()
            with tracer.span("transforms", category="compiler",
                             graph=work.name,
                             concat_strategy=config.concat_strategy):
                commute_upsample_lconv(work, tstats)
                if config.concat_strategy == "merge":
                    # merge the all-restore-chain concats (Fig. 9a), then fall
                    # back to splitting the remaining mixed concats (Fig. 9c)
                    merge_lconv_concat(work, tstats)
                    merge_lconv_add(work, tstats)
                    push_act_through_concat(work, tstats)
                    split_concat_fconv(work, tstats)
                elif config.concat_strategy == "split":
                    merge_lconv_add(work, tstats)
                    push_act_through_concat(work, tstats)
                    split_concat_fconv(work, tstats)
            report.transforms = tstats

        if config.enable_fusion:
            report.fusion = fuse_activation_layers(
                work, self._fusion_config(work, config))

        if config.enable_scheduling:
            report.schedule = reschedule(work)

        work.dead_code_eliminate()
        work.validate()
        report.peak_after = estimate_peak_internal(work)
        report.weight_bytes_after = work.weight_bytes()
        logger.debug("pipeline: %s peak %d B -> %d B", work.name,
                     report.peak_before, report.peak_after)
        return work, report


def optimize(graph: Graph, config: TeMCOConfig | None = None, *,
             tuner: Callable[[Graph], dict | None] | None = None,
             ) -> tuple[Graph, OptimizationReport]:
    """One-call TeMCO: returns ``(optimized graph, report)``."""
    return TeMCOCompiler(config, tuner=tuner).run(graph)
