"""Training extension: reverse-mode autodiff + SGD over IR graphs.

Realizes the paper's accuracy workflow (§4.4): decompose, (re)train the
decomposed model, then apply TeMCO — whose passes preserve the trained
predictions exactly.
"""

from .autodiff import Gradients, Tape, backward, forward_with_tape, grad_check
from .gradients import BACKWARD, UntrainableOpError, backward_node
from .losses import bce_with_probs, mse, softmax_cross_entropy
from .sgd import SGDConfig, TrainResult, train, train_classifier, train_segmenter

__all__ = [
    "Tape",
    "Gradients",
    "forward_with_tape",
    "backward",
    "grad_check",
    "BACKWARD",
    "backward_node",
    "UntrainableOpError",
    "softmax_cross_entropy",
    "bce_with_probs",
    "mse",
    "SGDConfig",
    "TrainResult",
    "train",
    "train_classifier",
    "train_segmenter",
]
