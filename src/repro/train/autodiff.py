"""Reverse-mode automatic differentiation over the IR graph.

``forward_with_tape`` runs a graph keeping every activation alive (the
training-mode memory regime the paper contrasts with inference in §5);
``backward`` walks the schedule in reverse accumulating vector–Jacobian
products into input and parameter gradients.

The engine differentiates *decomposed* (or original) models; fused
TeMCO kernels are inference-only by design, mirroring the paper's
workflow: decompose → train → TeMCO-optimize for inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import kernels
from ..ir.graph import Graph
from .gradients import backward_node

__all__ = ["Tape", "forward_with_tape", "backward", "grad_check"]


@dataclass
class Tape:
    """Cached activations of one forward pass."""

    graph: Graph
    env: dict[str, np.ndarray]

    def output(self) -> np.ndarray:
        if len(self.graph.outputs) != 1:
            raise ValueError("tape.output() requires a single-output graph")
        return self.env[self.graph.outputs[0].name]


def forward_with_tape(graph: Graph, inputs: dict[str, np.ndarray]) -> Tape:
    """Run ``graph`` keeping all intermediate activations."""
    env: dict[str, np.ndarray] = {}
    for v in graph.inputs:
        arr = np.asarray(inputs[v.name], dtype=v.dtype.np)
        if tuple(arr.shape) != v.shape:
            raise ValueError(f"input {v.name!r}: shape {arr.shape} != {v.shape}")
        env[v.name] = arr
    for node in graph.nodes:
        env[node.output.name] = kernels.run_node(
            node, [env[v.name] for v in node.inputs])
    return Tape(graph=graph, env=env)


@dataclass
class Gradients:
    """Result of one backward pass."""

    #: node name -> {param name -> gradient array}
    params: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)
    #: graph input name -> gradient array
    inputs: dict[str, np.ndarray] = field(default_factory=dict)


def backward(tape: Tape, grad_outputs: dict[str, np.ndarray]) -> Gradients:
    """Accumulate VJPs through the tape.

    ``grad_outputs`` maps output value names to their upstream
    gradients (e.g. from a loss function).
    """
    graph = tape.graph
    grads: dict[str, np.ndarray] = {}
    for name, g in grad_outputs.items():
        expected = tape.env[name].shape
        g = np.asarray(g)
        if g.shape != expected:
            raise ValueError(f"grad for {name!r}: shape {g.shape} != {expected}")
        grads[name] = g.astype(tape.env[name].dtype, copy=False)

    result = Gradients()
    for node in reversed(graph.nodes):
        gy = grads.pop(node.output.name, None)
        if gy is None:
            continue  # this node does not influence any requested output
        in_arrays = [tape.env[v.name] for v in node.inputs]
        out_array = tape.env[node.output.name]
        input_grads, param_grads = backward_node(node, in_arrays, out_array, gy)
        if param_grads:
            acc = result.params.setdefault(node.name, {})
            for pname, g in param_grads.items():
                acc[pname] = acc[pname] + g if pname in acc else g
        for v, g in zip(node.inputs, input_grads):
            if v.name in grads:
                grads[v.name] = grads[v.name] + g
            else:
                grads[v.name] = g
    for v in graph.inputs:
        if v.name in grads:
            result.inputs[v.name] = grads[v.name]
    return result


def grad_check(graph: Graph, inputs: dict[str, np.ndarray], *,
               node_name: str, param: str, indices: list[tuple], eps: float = 1e-4,
               loss=None) -> tuple[np.ndarray, np.ndarray]:
    """Central-difference check of a parameter gradient.

    Returns ``(analytic, numeric)`` gradient values at ``indices`` for a
    scalar loss (default: sum of the graph output).  Used by the tests;
    runs the forward 2×len(indices) times, so keep graphs tiny.
    """
    if loss is None:
        def loss(out):
            return float(out.sum())

        def loss_grad(out):
            return np.ones_like(out)
    else:
        loss, loss_grad = loss

    tape = forward_with_tape(graph, inputs)
    out_name = graph.outputs[0].name
    grads = backward(tape, {out_name: loss_grad(tape.env[out_name])})
    analytic = np.array([grads.params[node_name][param][idx] for idx in indices])

    node = graph.find_node(node_name)
    weight = node.params[param]
    numeric = []
    for idx in indices:
        original = weight[idx]
        weight[idx] = original + eps
        up = loss(forward_with_tape(graph, inputs).output())
        weight[idx] = original - eps
        down = loss(forward_with_tape(graph, inputs).output())
        weight[idx] = original
        numeric.append((up - down) / (2 * eps))
    return analytic, np.array(numeric)
