"""Backward (VJP) kernels for every trainable IR op.

Each function maps ``(node, input arrays, output array, grad_output)``
to ``(input gradients, param gradients)``.  Gradients are exact
vector–Jacobian products, validated against central finite differences
in the test suite.

Training happens on the *decomposed* model, before TeMCO optimization —
matching the paper's workflow (§4.4: decompose, train, then optimize
for inference).  Fused ops therefore have no backward; requesting one
raises with a pointer to that workflow.
"""

from __future__ import annotations

import numpy as np

from ..ir.node import Node
from ..kernels import conv2d, pad2d, pair, sliding_windows
from ..kernels.activation import sigmoid as _sigmoid

__all__ = ["BACKWARD", "backward_node", "UntrainableOpError"]


class UntrainableOpError(NotImplementedError):
    """Raised for ops without a backward (fused inference-only kernels)."""


# ---------------------------------------------------------------------------
# convolution family
# ---------------------------------------------------------------------------

def _conv2d_grad_input(grad_y: np.ndarray, weight: np.ndarray, x_shape,
                       stride, padding, groups: int) -> np.ndarray:
    """∂L/∂x of a convolution: transposed convolution of grad_y."""
    n, c, h, w = x_shape
    cout, cin_g, kh, kw = weight.shape
    sh, sw = pair(stride)
    ph, pw = pair(padding)
    # zero-stuff grad_y by stride, then correlate with the flipped kernel
    oh, ow = grad_y.shape[2], grad_y.shape[3]
    hs = (oh - 1) * sh + 1
    ws = (ow - 1) * sw + 1
    stuffed = np.zeros((n, cout, hs, ws), dtype=grad_y.dtype)
    stuffed[:, :, ::sh, ::sw] = grad_y
    # pad so the valid correlation reproduces the padded-input extent,
    # then crop the padding off
    pad_h, pad_w = kh - 1, kw - 1
    stuffed = np.pad(stuffed, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)))
    flipped = weight[:, :, ::-1, ::-1]
    if groups == 1:
        wk = np.ascontiguousarray(flipped.transpose(1, 0, 2, 3))  # (Cin, Cout, kh, kw)
        full = conv2d(stuffed, wk, None)
    else:
        cpg_out = cout // groups
        cpg_in = (c // groups)
        parts = []
        for g in range(groups):
            wg = flipped[g * cpg_out:(g + 1) * cpg_out]        # (cpg_out, cin_g, kh, kw)
            wk = np.ascontiguousarray(wg.transpose(1, 0, 2, 3))
            parts.append(conv2d(stuffed[:, g * cpg_out:(g + 1) * cpg_out], wk, None))
        full = np.concatenate(parts, axis=1)
    # `full` covers the padded input extent (h + 2ph, w + 2pw), possibly
    # short on the right/bottom when the conv window did not tile exactly
    grad_x = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=grad_y.dtype)
    grad_x[:, :, :full.shape[2], :full.shape[3]] = full
    return np.ascontiguousarray(grad_x[:, :, ph:ph + h, pw:pw + w])


def _conv2d_grad_weight(x: np.ndarray, grad_y: np.ndarray, weight_shape,
                        stride, padding, groups: int) -> np.ndarray:
    """∂L/∂W: correlation of the (padded) input with grad_y."""
    cout, cin_g, kh, kw = weight_shape
    xp = pad2d(x, padding)
    win = sliding_windows(xp, (kh, kw), stride)  # (N, C, OH, OW, KH, KW)
    if groups == 1:
        return np.einsum("nchwkl,nohw->ockl", win, grad_y, optimize=True)
    c = x.shape[1]
    cpg_in = c // groups
    cpg_out = cout // groups
    grads = np.empty(weight_shape, dtype=x.dtype)
    for g in range(groups):
        wing = win[:, g * cpg_in:(g + 1) * cpg_in]
        gy = grad_y[:, g * cpg_out:(g + 1) * cpg_out]
        grads[g * cpg_out:(g + 1) * cpg_out] = np.einsum(
            "nchwkl,nohw->ockl", wing, gy, optimize=True)
    return grads


def _bw_conv2d(node: Node, inputs, output, grad_y):
    weight = node.params["weight"]
    if tuple(pair(node.attrs.get("dilation", (1, 1)))) != (1, 1):
        raise UntrainableOpError(
            f"dilated convolutions are inference-only (node {node.name!r})")
    stride = node.attrs.get("stride", (1, 1))
    padding = node.attrs.get("padding", (0, 0))
    groups = int(node.attrs.get("groups", 1))
    grad_x = _conv2d_grad_input(grad_y, weight, inputs[0].shape,
                                stride, padding, groups)
    param_grads = {"weight": _conv2d_grad_weight(inputs[0], grad_y, weight.shape,
                                                 stride, padding, groups)}
    if "bias" in node.params:
        param_grads["bias"] = grad_y.sum(axis=(0, 2, 3))
    return [grad_x], param_grads


def _bw_conv_transpose2d(node: Node, inputs, output, grad_y):
    weight = node.params["weight"]  # (Cin, Cout, kh, kw)
    stride = node.attrs.get("stride", (1, 1))
    padding = node.attrs.get("padding", (0, 0))
    grad_x = _conv_transpose_grad_input(grad_y, weight, stride, padding)
    grad_w = _conv_transpose_grad_weight(inputs[0], grad_y, weight.shape,
                                         stride, padding)
    param_grads = {"weight": grad_w}
    if "bias" in node.params:
        param_grads["bias"] = grad_y.sum(axis=(0, 2, 3))
    return [grad_x], param_grads


def _conv_transpose_grad_input(grad_y, weight, stride, padding):
    """conv_transpose is the adjoint of a convolution, so the backward
    for its input is that convolution applied to grad_y.  The matching
    conv reads the (Cin, Cout, kh, kw) layout as (out=Cin, in=Cout) —
    i.e. ``weight`` verbatim."""
    return conv2d(grad_y, np.ascontiguousarray(weight), None,
                  stride=stride, padding=padding)


def _conv_transpose_grad_weight(x, grad_y, weight_shape, stride, padding):
    """∂L/∂W for conv_transpose: correlate grad_y windows with x."""
    cin, cout, kh, kw = weight_shape
    gp = pad2d(grad_y, padding)
    win = sliding_windows(gp, (kh, kw), stride)  # (N, Cout, H, W, kh, kw)
    return np.einsum("nohwkl,nchw->cokl", win, x, optimize=True)


def _bw_linear(node: Node, inputs, output, grad_y):
    weight = node.params["weight"]
    grad_x = grad_y @ weight
    param_grads = {"weight": grad_y.T @ inputs[0]}
    if "bias" in node.params:
        param_grads["bias"] = grad_y.sum(axis=0)
    return [grad_x], param_grads


# ---------------------------------------------------------------------------
# activations & elementwise
# ---------------------------------------------------------------------------

def _bw_relu(node, inputs, output, grad_y):
    return [grad_y * (inputs[0] > 0)], {}


def _bw_sigmoid(node, inputs, output, grad_y):
    return [grad_y * output * (1.0 - output)], {}


def _bw_tanh(node, inputs, output, grad_y):
    return [grad_y * (1.0 - output * output)], {}


def _bw_silu(node, inputs, output, grad_y):
    s = _sigmoid(inputs[0])
    return [grad_y * (s * (1.0 + inputs[0] * (1.0 - s)))], {}


def _bw_leaky_relu(node, inputs, output, grad_y):
    slope = float(node.attrs.get("negative_slope", 0.01))
    return [grad_y * np.where(inputs[0] >= 0, 1.0, slope)], {}


def _bw_elu(node, inputs, output, grad_y):
    alpha = float(node.attrs.get("alpha", 1.0))
    # for x < 0: y = α(eˣ−1) so dy/dx = α·eˣ = y + α
    return [grad_y * np.where(inputs[0] >= 0, 1.0, output + alpha)], {}


def _bw_hardswish(node, inputs, output, grad_y):
    x = inputs[0]
    inner = np.clip(x + 3.0, 0.0, 6.0) / 6.0
    slope = np.where((x > -3.0) & (x < 3.0), x / 6.0, 0.0)
    return [grad_y * (inner + slope)], {}


def _bw_gelu(node, inputs, output, grad_y):
    x = inputs[0]
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x + 0.044715 * x ** 3)
    t = np.tanh(inner)
    dinner = c * (1.0 + 3 * 0.044715 * x ** 2)
    grad = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
    return [grad_y * grad], {}


def _bw_softmax(node, inputs, output, grad_y):
    axis = int(node.attrs.get("axis", 1))
    dot = (grad_y * output).sum(axis=axis, keepdims=True)
    return [output * (grad_y - dot)], {}


def _bw_identity(node, inputs, output, grad_y):
    return [grad_y], {}


def _bw_add(node, inputs, output, grad_y):
    return [grad_y for _ in inputs], {}


def _bw_concat(node, inputs, output, grad_y):
    axis = int(node.attrs.get("axis", 1))
    sizes = [v.shape[axis] for v in inputs]
    splits = np.cumsum(sizes)[:-1]
    return list(np.split(grad_y, splits, axis=axis)), {}


def _bw_flatten(node, inputs, output, grad_y):
    return [grad_y.reshape(inputs[0].shape)], {}


def _bw_batchnorm(node, inputs, output, grad_y):
    # inference-mode BN with fixed statistics is a per-channel affine map;
    # we train gamma/beta, and statistics stay frozen
    gamma = node.params["gamma"]
    var = node.params["var"]
    mean = node.params["mean"]
    eps = float(node.attrs.get("eps", 1e-5))
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (inputs[0] - mean[None, :, None, None]) * inv_std[None, :, None, None]
    grad_x = grad_y * (gamma * inv_std)[None, :, None, None]
    return [grad_x], {
        "gamma": (grad_y * xhat).sum(axis=(0, 2, 3)),
        "beta": grad_y.sum(axis=(0, 2, 3)),
    }


# ---------------------------------------------------------------------------
# pooling / resampling
# ---------------------------------------------------------------------------

def _bw_maxpool(node, inputs, output, grad_y):
    x = inputs[0]
    kernel = node.attrs["kernel"]
    stride = node.attrs.get("stride", kernel)
    padding = node.attrs.get("padding", 0)
    kh, kw = pair(kernel)
    sh, sw = pair(stride)
    ph, pw = pair(padding)
    neg = np.finfo(x.dtype).min
    xp = pad2d(x, padding, value=neg)
    n, c, hp, wp = xp.shape
    grad_xp = np.zeros_like(xp)
    oh, ow = grad_y.shape[2], grad_y.shape[3]
    win = sliding_windows(xp, (kh, kw), (sh, sw))
    # winner-takes-all (first maximum on ties, matching argmax semantics)
    flat = win.reshape(n, c, oh, ow, kh * kw)
    arg = flat.argmax(axis=-1)
    ky, kx = np.divmod(arg, kw)
    oy, ox = np.meshgrid(np.arange(oh), np.arange(ow), indexing="ij")
    rows = oy[None, None] * sh + ky
    cols = ox[None, None] * sw + kx
    ni = np.arange(n)[:, None, None, None]
    ci = np.arange(c)[None, :, None, None]
    np.add.at(grad_xp, (ni, ci, rows, cols), grad_y)
    return [np.ascontiguousarray(
        grad_xp[:, :, ph:ph + x.shape[2], pw:pw + x.shape[3]])], {}


def _bw_avgpool(node, inputs, output, grad_y):
    x = inputs[0]
    kernel = node.attrs["kernel"]
    stride = node.attrs.get("stride", kernel)
    padding = node.attrs.get("padding", 0)
    kh, kw = pair(kernel)
    sh, sw = pair(stride)
    ph, pw = pair(padding)
    n, c, h, w = x.shape
    grad_xp = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=x.dtype)
    scale = 1.0 / (kh * kw)
    oh, ow = grad_y.shape[2], grad_y.shape[3]
    for ky in range(kh):
        for kx in range(kw):
            rows = slice(ky, ky + oh * sh, sh)
            cols = slice(kx, kx + ow * sw, sw)
            grad_xp[:, :, rows, cols] += grad_y * scale
    return [np.ascontiguousarray(grad_xp[:, :, ph:ph + h, pw:pw + w])], {}


def _bw_global_avgpool(node, inputs, output, grad_y):
    n, c, h, w = inputs[0].shape
    return [np.broadcast_to(grad_y / (h * w), (n, c, h, w)).astype(grad_y.dtype)], {}


def _bw_upsample_nearest(node, inputs, output, grad_y):
    scale = int(node.attrs.get("scale", 2))
    if scale == 1:
        return [grad_y], {}
    n, c, oh, ow = grad_y.shape
    h, w = oh // scale, ow // scale
    view = grad_y.reshape(n, c, h, scale, w, scale)
    return [view.sum(axis=(3, 5))], {}


def _bw_untrainable(node, inputs, output, grad_y):
    raise UntrainableOpError(
        f"op {node.op!r} (node {node.name!r}) has no backward: train the "
        f"decomposed model first, then run TeMCO for inference (paper §4.4)")


BACKWARD = {
    "conv2d": _bw_conv2d,
    "conv_transpose2d": _bw_conv_transpose2d,
    "linear": _bw_linear,
    "relu": _bw_relu,
    "sigmoid": _bw_sigmoid,
    "tanh": _bw_tanh,
    "silu": _bw_silu,
    "leaky_relu": _bw_leaky_relu,
    "elu": _bw_elu,
    "hardswish": _bw_hardswish,
    "gelu": _bw_gelu,
    "softmax": _bw_softmax,
    "identity": _bw_identity,
    "dropout": _bw_identity,  # inference-mode dropout is the identity
    "add": _bw_add,
    "concat": _bw_concat,
    "flatten": _bw_flatten,
    "batchnorm2d": _bw_batchnorm,
    "maxpool2d": _bw_maxpool,
    "avgpool2d": _bw_avgpool,
    "global_avgpool": _bw_global_avgpool,
    "upsample_nearest": _bw_upsample_nearest,
    "fused_block": _bw_untrainable,
    "fused_restore": _bw_untrainable,
}


def backward_node(node: Node, inputs, output, grad_y):
    """Dispatch the VJP for one node."""
    try:
        fn = BACKWARD[node.op]
    except KeyError as exc:
        raise UntrainableOpError(f"no backward registered for op {node.op!r}") from exc
    return fn(node, inputs, output, grad_y)
