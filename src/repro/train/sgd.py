"""SGD training loop over IR graphs.

A deliberately small trainer — enough to realize the paper's accuracy
workflow on the synthetic datasets: train the original model, train (or
fine-tune) the decomposed model, then hand the decomposed weights to
TeMCO, whose optimizations provably keep the predictions (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..ir.graph import Graph
from .autodiff import backward, forward_with_tape

__all__ = ["SGDConfig", "TrainResult", "train", "train_classifier",
           "train_segmenter"]


@dataclass(frozen=True)
class SGDConfig:
    """Plain SGD with momentum and weight decay."""

    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    grad_clip: float | None = 5.0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {self.learning_rate}")
        if not (0.0 <= self.momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {self.momentum}")


@dataclass
class TrainResult:
    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1]

    def improved(self, window: int = 3) -> bool:
        """Did the smoothed loss go down over training?"""
        if len(self.losses) < 2 * window:
            return self.losses[-1] < self.losses[0]
        head = float(np.mean(self.losses[:window]))
        tail = float(np.mean(self.losses[-window:]))
        return tail < head


def train(graph: Graph, batches, loss_fn: Callable, *,
          config: SGDConfig | None = None, steps: int | None = None) -> TrainResult:
    """Train ``graph``'s parameters in place.

    ``batches`` is an iterable of ``(inputs dict, target)``; ``loss_fn``
    maps ``(prediction, target) -> (value, grad)``.  Updates every
    parameter for which the backward pass produced a gradient (weights
    and biases of convs/linears, BN affine parameters).
    """
    config = config or SGDConfig()
    velocity: dict[tuple[str, str], np.ndarray] = {}
    result = TrainResult()
    out_name = graph.outputs[0].name
    for step, (inputs, target) in enumerate(batches):
        if steps is not None and step >= steps:
            break
        tape = forward_with_tape(graph, inputs)
        value, grad = loss_fn(tape.env[out_name], target)
        result.losses.append(value)
        grads = backward(tape, {out_name: grad})
        for node_name, param_grads in grads.params.items():
            node = graph.find_node(node_name)
            for pname, g in param_grads.items():
                g = g.astype(np.float64)
                if config.grad_clip is not None:
                    norm = float(np.linalg.norm(g))
                    if norm > config.grad_clip:
                        g = g * (config.grad_clip / norm)
                if config.weight_decay:
                    g = g + config.weight_decay * node.params[pname]
                key = (node_name, pname)
                v = velocity.get(key)
                v = g if v is None else config.momentum * v + g
                velocity[key] = v
                node.params[pname] = (node.params[pname]
                                      - config.learning_rate * v).astype(
                    node.params[pname].dtype)
    return result


def train_classifier(graph: Graph, *, steps: int = 40, batch: int | None = None,
                     hw: int | None = None, num_classes: int = 10, seed: int = 0,
                     config: SGDConfig | None = None) -> TrainResult:
    """Train a classification graph on the synthetic labeled dataset."""
    from ..data import classification_batch
    from .losses import softmax_cross_entropy

    n, _c, h, _w = graph.inputs[0].shape
    batch = batch or n
    hw = hw or h

    def batches():
        step = 0
        while True:
            data = classification_batch(batch, hw=hw, num_classes=num_classes,
                                        seed=seed + step)
            yield {graph.inputs[0].name: data.images}, data.labels
            step += 1

    return train(graph, batches(), softmax_cross_entropy, config=config,
                 steps=steps)


def train_segmenter(graph: Graph, *, steps: int = 30, seed: int = 0,
                    config: SGDConfig | None = None) -> TrainResult:
    """Train a segmentation graph (sigmoid-mask output) on synthetic blobs."""
    from ..data import segmentation_batch
    from .losses import bce_with_probs

    n, _c, h, _w = graph.inputs[0].shape

    def batches():
        step = 0
        while True:
            data = segmentation_batch(n, hw=h, seed=seed + step)
            yield {graph.inputs[0].name: data.images}, data.masks
            step += 1

    return train(graph, batches(), bce_with_probs, config=config, steps=steps)
