"""Loss functions: value + gradient in one call.

Each loss returns ``(scalar value, grad wrt predictions)`` so the
trainer can seed :func:`repro.train.autodiff.backward` directly.
"""

from __future__ import annotations

import numpy as np

from ..kernels.activation import sigmoid, softmax

__all__ = ["softmax_cross_entropy", "bce_with_probs", "mse"]


def softmax_cross_entropy(logits: np.ndarray,
                          labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy of softmax(logits) against integer labels."""
    if logits.ndim != 2:
        raise ValueError(f"expected (N, classes) logits, got {logits.shape}")
    n = logits.shape[0]
    probs = softmax(logits.astype(np.float64), axis=1)
    idx = (np.arange(n), labels)
    value = float(-np.log(np.clip(probs[idx], 1e-12, None)).mean())
    grad = probs.copy()
    grad[idx] -= 1.0
    return value, (grad / n).astype(logits.dtype)


def bce_with_probs(probs: np.ndarray,
                   targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean binary cross-entropy for predictions already in (0, 1)
    (e.g. the UNet's sigmoid masks)."""
    if probs.shape != targets.shape:
        raise ValueError(f"shape mismatch: {probs.shape} vs {targets.shape}")
    p = np.clip(probs.astype(np.float64), 1e-7, 1.0 - 1e-7)
    t = targets.astype(np.float64)
    value = float(-(t * np.log(p) + (1 - t) * np.log(1 - p)).mean())
    grad = ((p - t) / (p * (1 - p))) / p.size
    return value, grad.astype(probs.dtype)


def mse(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred.astype(np.float64) - target
    value = float((diff * diff).mean())
    grad = (2.0 * diff / diff.size).astype(pred.dtype)
    return value, grad
