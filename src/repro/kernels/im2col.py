"""Sliding-window views for convolution and pooling.

Uses ``numpy.lib.stride_tricks.as_strided`` to expose all convolution
windows as a zero-copy 6D view — the cache-friendly idiom the
hpc-parallel guides recommend (views, not copies; the copy happens at
most once inside the consuming GEMM).
"""

from __future__ import annotations

import numpy as np

__all__ = ["pad2d", "sliding_windows", "pair"]


def pair(v) -> tuple[int, int]:
    """Normalize an int-or-pair attr to ``(int, int)``."""
    if isinstance(v, (tuple, list)):
        return int(v[0]), int(v[1])
    return int(v), int(v)


def pad2d(x: np.ndarray, padding, value: float = 0.0) -> np.ndarray:
    """Pad the two trailing (spatial) dims of an NCHW tensor."""
    ph, pw = pair(padding)
    if ph == 0 and pw == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                  mode="constant", constant_values=value)


def sliding_windows(x: np.ndarray, kernel, stride, dilation=(1, 1)) -> np.ndarray:
    """All convolution windows of an NCHW array as a read-only view.

    Returns shape ``(N, C, OH, OW, KH, KW)``.  The caller must have
    already applied padding.  ``dilation`` spaces the kernel taps —
    still zero-copy, just larger strides on the tap axes.
    """
    kh, kw = pair(kernel)
    sh, sw = pair(stride)
    dh, dw = pair(dilation)
    n, c, h, w = x.shape
    eff_kh = dh * (kh - 1) + 1
    eff_kw = dw * (kw - 1) + 1
    oh = (h - eff_kh) // sh + 1
    ow = (w - eff_kw) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(f"window {kh}x{kw} (dilation {dh}x{dw}) stride "
                         f"{sh}x{sw} does not fit in {h}x{w}")
    sn, sc, sh_, sw_ = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(sn, sc, sh_ * sh, sw_ * sw, sh_ * dh, sw_ * dw),
        writeable=False,
    )
    return view
