"""Element-wise activation kernels.

Each activation is a pure ``ndarray -> ndarray`` function; the fused
block reuses these on channel-block tiles, which is what makes
activation-layer fusion semantics-preserving (the activation is applied
to exactly the same elements, just in tiled order).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["relu", "silu", "sigmoid", "tanh", "leaky_relu", "elu",
           "hardswish", "gelu", "get_activation", "softmax"]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    # numerically stable piecewise logistic
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def silu(x: np.ndarray) -> np.ndarray:
    """Sigmoid-weighted linear unit (a.k.a. swish), x * sigmoid(x)."""
    return x * sigmoid(x)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def leaky_relu(x: np.ndarray, negative_slope: float = 0.01) -> np.ndarray:
    return np.where(x >= 0, x, negative_slope * x)


def elu(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """Exponential linear unit: x for x>0, α(eˣ−1) otherwise."""
    out = x.copy()
    neg = x < 0
    out[neg] = alpha * np.expm1(x[neg])
    return out


def hardswish(x: np.ndarray) -> np.ndarray:
    """x · clip(x+3, 0, 6) / 6 (MobileNetV3's cheap swish)."""
    return x * np.clip(x + 3.0, 0.0, 6.0) / 6.0


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation)."""
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x ** 3)))


def softmax(x: np.ndarray, axis: int = 1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=axis, keepdims=True)


_ACTIVATIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "relu": relu,
    "silu": silu,
    "sigmoid": sigmoid,
    "tanh": tanh,
    "leaky_relu": leaky_relu,
    "elu": elu,
    "hardswish": hardswish,
    "gelu": gelu,
}


def get_activation(name: str, **params) -> Callable[[np.ndarray], np.ndarray]:
    """Look up an activation; extra ``params`` (e.g. ``negative_slope``,
    ``alpha``) are bound into the returned callable."""
    try:
        fn = _ACTIVATIONS[name]
    except KeyError as exc:
        raise KeyError(f"unknown activation {name!r}; known: {sorted(_ACTIVATIONS)}") from exc
    if params:
        import functools
        return functools.partial(fn, **params)
    return fn
