"""The fused ``lconv → activation [→ pool | upsample] → fconv`` kernel.

This is the NumPy analog of the paper's CUDA kernel (Listing 1).  The
CUDA version streams the restored C'-channel tensor through shared-
memory tiles over (C', H, W); here we stream it through *channel
blocks*: for each block of ``block_size`` restored channels we

1. restore the block with the lconv weights (``w1``),
2. apply the element-wise activation,
3. optionally pool / nearest-upsample the block spatially,
4. contract the block into the fconv accumulator (``w2``).

At no point does the full restored tensor ``(N, C', H, W)`` exist —
only one ``(N, block, H, W)`` tile, which is the entire memory claim of
activation-layer fusion.  The per-element results are bit-identical to
running the three layers separately (same contractions, same order of
activation application; only the fconv summation order over C' changes,
a float-reassociation the equivalence checker bounds).

Correctness constraint from the paper (§3.2): the activation is
element-wise and the fconv needs *all* activated channels per output
element, so the sequence cannot be reordered — but it *can* be blocked
over C', because activation is applied per element and fconv is a sum
over C' that accumulates across blocks.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .activation import get_activation
from .pool import avgpool2d, maxpool2d, upsample_nearest

__all__ = ["fused_block", "fused_restore", "fused_scratch_bytes",
           "spatially_tileable", "DEFAULT_BLOCK_SIZE"]

#: Default number of restored channels processed per tile.
DEFAULT_BLOCK_SIZE = 32


def _resample(tile: np.ndarray, pool: dict[str, Any] | None,
              upsample: int) -> np.ndarray:
    """Apply the optional pooling / nearest-upsample step to a tile."""
    if pool is not None:
        stride = pool.get("stride", pool["kernel"])
        padding = pool.get("padding", 0)
        if pool["kind"] == "max":
            return maxpool2d(tile, pool["kernel"], stride, padding)
        return avgpool2d(tile, pool["kernel"], stride, padding)
    if upsample:
        return upsample_nearest(tile, int(upsample))
    return tile


def _fused_core(x_region: np.ndarray, w1: np.ndarray, b1: np.ndarray | None,
                w2: np.ndarray | None, act_fn,
                pool: dict[str, Any] | None, upsample: int,
                block_size: int) -> np.ndarray:
    """Channel-blocked lconv→act→resample[→fconv] over one spatial region."""
    c_prime = w1.shape[0]
    out: np.ndarray | None = None
    for c0 in range(0, c_prime, block_size):
        c1 = min(c0 + block_size, c_prime)
        # (1) restore a channel block: (N, blk, h, w)
        tile = np.einsum("nrhw,br->nbhw", x_region, w1[c0:c1], optimize=True)
        if b1 is not None:
            tile += b1[c0:c1][None, :, None, None]
        # (2) activation on the tile
        if act_fn is not None:
            tile = act_fn(tile)
        # (3) optional spatial resampling per block
        tile = _resample(tile, pool, upsample)
        if w2 is None:  # restore epilogue: write the block through
            if out is None:
                n = x_region.shape[0]
                out = np.empty((n, c_prime, tile.shape[2], tile.shape[3]),
                               dtype=x_region.dtype)
            out[:, c0:c1] = tile
        else:
            # (4) accumulate into the reduced output
            contribution = np.einsum("nbhw,ob->nohw", tile, w2[:, c0:c1],
                                     optimize=True)
            out = contribution if out is None else out + contribution
    assert out is not None  # C' >= 1 by construction
    return out


def spatially_tileable(h: int, w: int, spatial_tile: int,
                       pool: dict[str, Any] | None) -> bool:
    """Spatial tiling is exact only when no window straddles a tile edge:
    non-overlapping unpadded pooling whose stride divides the tile, and
    tiles that divide the input."""
    if spatial_tile <= 0 or (h <= spatial_tile and w <= spatial_tile):
        return False
    if h % spatial_tile or w % spatial_tile:
        return False
    if pool is not None:
        kh, kw = pool["kernel"]
        sh, sw = pool.get("stride", pool["kernel"])
        ph, pw = pool.get("padding", (0, 0))
        if (kh, kw) != (sh, sw) or (ph, pw) != (0, 0):
            return False
        if spatial_tile % sh or spatial_tile % sw:
            return False
    return True


def fused_block(x: np.ndarray, w1: np.ndarray, b1: np.ndarray | None,
                w2: np.ndarray, b2: np.ndarray | None,
                act: str | None = None, pool: dict[str, Any] | None = None,
                upsample: int = 0,
                block_size: int = DEFAULT_BLOCK_SIZE,
                spatial_tile: int = 0,
                act_params: dict[str, Any] | None = None) -> np.ndarray:
    """Run the fused sequence on ``x`` of shape ``(N, R_in, H, W)``.

    Parameters
    ----------
    w1:
        lconv restore matrix, shape ``(C', R_in)``.
    w2:
        fconv reduce matrix, shape ``(R_out, C')``.
    act:
        Activation name or ``None`` for a pure lconv→fconv contraction.
    pool:
        Optional pooling config ``{"kind", "kernel", "stride", "padding"}``
        applied between the activation and the fconv.
    upsample:
        Optional nearest-neighbour upsample scale (mutually exclusive
        with ``pool``); used after the UNet decoder transformation.
    block_size:
        Restored channels per tile; clamped into ``[1, C']`` so an
        oversized block reports the same scratch it actually uses
        (one full-width tile) instead of a fictitious larger one.
    spatial_tile:
        Optional spatial tile edge (Listing 1's 3D blocking over
        (C', H, W)); applied only when exact — the input must tile
        evenly and any pooling must be non-overlapping and unpadded —
        otherwise the kernel silently falls back to channel-only
        blocking.  Scratch memory with both blockings is
        ``block_size · spatial_tile² · N`` elements.
    """
    if pool is not None and upsample:
        raise ValueError("fused_block cannot both pool and upsample")
    n, r_in, h, w = x.shape
    c_prime, r_in_w = w1.shape
    if r_in_w != r_in:
        raise ValueError(f"w1 in-channels {r_in_w} != input channels {r_in}")
    r_out, c_prime_w = w2.shape
    if c_prime_w != c_prime:
        raise ValueError(f"w2 in-channels {c_prime_w} != w1 out-channels {c_prime}")
    act_fn = get_activation(act, **(act_params or {})) if act is not None else None
    block_size = min(max(1, int(block_size)), c_prime)
    spatial_tile = int(spatial_tile or 0)

    if not spatially_tileable(h, w, spatial_tile, pool):
        out = _fused_core(x, w1, b1, w2, act_fn, pool, upsample, block_size)
    else:
        out = _tiled(x, w1, b1, w2, act_fn, pool, upsample, block_size,
                     spatial_tile, out_channels=r_out)
    if b2 is not None:
        out += b2[None, :, None, None]
    return np.ascontiguousarray(out)


def _tiled(x, w1, b1, w2, act_fn, pool, upsample, block_size, spatial_tile,
           out_channels):
    """Loop exact spatial tiles, mapping each to its output region."""
    n, _r, h, w = x.shape
    if pool is not None:
        sh, sw = pool.get("stride", pool["kernel"])
        oh, ow = h // sh, w // sw

        def out_range(y0, x0, y1, x1):
            return y0 // sh, x0 // sw, y1 // sh, x1 // sw
    elif upsample:
        scale = int(upsample)
        oh, ow = h * scale, w * scale

        def out_range(y0, x0, y1, x1):
            return y0 * scale, x0 * scale, y1 * scale, x1 * scale
    else:
        oh, ow = h, w

        def out_range(y0, x0, y1, x1):
            return y0, x0, y1, x1

    out = np.empty((n, out_channels, oh, ow), dtype=x.dtype)
    for y0 in range(0, h, spatial_tile):
        for x0 in range(0, w, spatial_tile):
            y1 = min(y0 + spatial_tile, h)
            x1 = min(x0 + spatial_tile, w)
            region = x[:, :, y0:y1, x0:x1]
            oy0, ox0, oy1, ox1 = out_range(y0, x0, y1, x1)
            out[:, :, oy0:oy1, ox0:ox1] = _fused_core(
                region, w1, b1, w2, act_fn, pool, upsample, block_size)
    return out


def fused_restore(x: np.ndarray, w1: np.ndarray, b1: np.ndarray | None,
                  act: str | None = None, pool: dict[str, Any] | None = None,
                  upsample: int = 0,
                  block_size: int = DEFAULT_BLOCK_SIZE,
                  spatial_tile: int = 0,
                  act_params: dict[str, Any] | None = None) -> np.ndarray:
    """Restore-epilogue kernel: ``lconv → act [→ pool | upsample]`` streamed
    through channel-block tiles, materializing only the *final* tensor.

    Used where a restored tensor is genuinely needed downstream (a join
    with multiple consumers) but the intermediate pre-activation /
    pre-pool full tensors are not: the classic
    ``stem.lconv → relu → maxpool`` prologue of ResNet/DenseNet.  The
    activation's input+output pair (Eq. 3's ``2·C'H'W'`` term) never
    coexists — each channel block is restored, activated, pooled and
    written out before the next block is touched.  This is Listing 1
    without the trailing fconv contraction.
    """
    if pool is not None and upsample:
        raise ValueError("fused_restore cannot both pool and upsample")
    n, r_in, h, w = x.shape
    c_prime, r_in_w = w1.shape
    if r_in_w != r_in:
        raise ValueError(f"w1 in-channels {r_in_w} != input channels {r_in}")
    act_fn = get_activation(act, **(act_params or {})) if act is not None else None
    block_size = min(max(1, int(block_size)), c_prime)
    spatial_tile = int(spatial_tile or 0)
    if not spatially_tileable(h, w, spatial_tile, pool):
        return _fused_core(x, w1, b1, None, act_fn, pool, upsample, block_size)
    return _tiled(x, w1, b1, None, act_fn, pool, upsample, block_size,
                  spatial_tile, out_channels=c_prime)


def fused_scratch_bytes(input_shape: tuple[int, ...], itemsize: int,
                        block_size: int = DEFAULT_BLOCK_SIZE,
                        c_prime: int | None = None,
                        spatial_tile: int = 0) -> int:
    """Peak scratch of :func:`fused_block`: one channel-block tile,
    optionally further bounded by the spatial tile edge.

    Reported separately from internal-tensor memory (the paper's CUDA
    tiles live in shared memory, outside the DRAM tensor pool); exposed
    for the tile-size ablation benchmark.
    """
    n, _r, h, w = input_shape
    blk = max(1, int(block_size))
    if c_prime is not None:
        blk = min(blk, int(c_prime))
    th, tw = h, w
    if spatial_tile and h % spatial_tile == 0 and w % spatial_tile == 0:
        th = min(h, spatial_tile)
        tw = min(w, spatial_tile)
    return blk * n * th * tw * itemsize
