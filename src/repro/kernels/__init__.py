"""Vectorized NumPy kernels for every IR op.

``KERNELS`` maps op kind -> callable ``(node, inputs: list[ndarray]) ->
ndarray``; the executor dispatches through it.  Individual kernels are
also exported directly for use in tests and reference implementations.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..ir.node import Node
from .activation import (elu, gelu, get_activation, hardswish,
                         leaky_relu, relu, sigmoid, silu, softmax, tanh)
from .conv import conv2d, conv_transpose2d, pointwise_conv
from .fused import (DEFAULT_BLOCK_SIZE, fused_block, fused_restore,
                    fused_scratch_bytes)
from .im2col import pad2d, pair, sliding_windows
from .linear import batchnorm2d, linear
from .pool import avgpool2d, global_avgpool, maxpool2d, upsample_nearest

__all__ = [
    "KERNELS",
    "run_node",
    "conv2d",
    "conv_transpose2d",
    "pointwise_conv",
    "fused_block",
    "fused_restore",
    "fused_scratch_bytes",
    "DEFAULT_BLOCK_SIZE",
    "linear",
    "batchnorm2d",
    "maxpool2d",
    "avgpool2d",
    "global_avgpool",
    "upsample_nearest",
    "relu",
    "silu",
    "sigmoid",
    "tanh",
    "leaky_relu",
    "elu",
    "hardswish",
    "gelu",
    "softmax",
    "get_activation",
    "pad2d",
    "pair",
    "sliding_windows",
]


def _k_conv2d(node: Node, inputs: list[np.ndarray]) -> np.ndarray:
    return conv2d(inputs[0], node.params["weight"], node.params.get("bias"),
                  stride=node.attrs.get("stride", (1, 1)),
                  padding=node.attrs.get("padding", (0, 0)),
                  groups=int(node.attrs.get("groups", 1)),
                  dilation=node.attrs.get("dilation", (1, 1)))


def _k_conv_transpose2d(node: Node, inputs: list[np.ndarray]) -> np.ndarray:
    return conv_transpose2d(inputs[0], node.params["weight"], node.params.get("bias"),
                            stride=node.attrs.get("stride", (1, 1)),
                            padding=node.attrs.get("padding", (0, 0)),
                            output_padding=node.attrs.get("output_padding", (0, 0)))


def _k_linear(node: Node, inputs: list[np.ndarray]) -> np.ndarray:
    return linear(inputs[0], node.params["weight"], node.params.get("bias"))


def _k_batchnorm2d(node: Node, inputs: list[np.ndarray]) -> np.ndarray:
    return batchnorm2d(inputs[0], node.params["gamma"], node.params["beta"],
                       node.params["mean"], node.params["var"],
                       eps=float(node.attrs.get("eps", 1e-5)))


def _k_maxpool2d(node: Node, inputs: list[np.ndarray]) -> np.ndarray:
    return maxpool2d(inputs[0], node.attrs["kernel"],
                     node.attrs.get("stride", node.attrs["kernel"]),
                     node.attrs.get("padding", 0))


def _k_avgpool2d(node: Node, inputs: list[np.ndarray]) -> np.ndarray:
    return avgpool2d(inputs[0], node.attrs["kernel"],
                     node.attrs.get("stride", node.attrs["kernel"]),
                     node.attrs.get("padding", 0))


def _k_fused_restore(node: Node, inputs: list[np.ndarray]) -> np.ndarray:
    return fused_restore(inputs[0], node.params["w1"], node.params.get("b1"),
                         act=node.attrs.get("act"),
                         pool=node.attrs.get("pool"),
                         upsample=int(node.attrs.get("upsample", 0) or 0),
                         block_size=int(node.attrs.get("block_size", DEFAULT_BLOCK_SIZE)),
                         spatial_tile=int(node.attrs.get("spatial_tile", 0) or 0),
                         act_params=node.attrs.get("act_params"))


def _k_fused_block(node: Node, inputs: list[np.ndarray]) -> np.ndarray:
    return fused_block(inputs[0], node.params["w1"], node.params.get("b1"),
                       node.params["w2"], node.params.get("b2"),
                       act=node.attrs.get("act"),
                       pool=node.attrs.get("pool"),
                       upsample=int(node.attrs.get("upsample", 0) or 0),
                       block_size=int(node.attrs.get("block_size", DEFAULT_BLOCK_SIZE)),
                       spatial_tile=int(node.attrs.get("spatial_tile", 0) or 0),
                       act_params=node.attrs.get("act_params"))


KERNELS: dict[str, Callable[[Node, list[np.ndarray]], np.ndarray]] = {
    "conv2d": _k_conv2d,
    "conv_transpose2d": _k_conv_transpose2d,
    "linear": _k_linear,
    "batchnorm2d": _k_batchnorm2d,
    "maxpool2d": _k_maxpool2d,
    "avgpool2d": _k_avgpool2d,
    "global_avgpool": lambda node, inputs: global_avgpool(inputs[0]),
    "upsample_nearest": lambda node, inputs: upsample_nearest(
        inputs[0], int(node.attrs.get("scale", 2))),
    "flatten": lambda node, inputs: np.ascontiguousarray(
        inputs[0].reshape(node.output.shape)),
    "relu": lambda node, inputs: relu(inputs[0]),
    "silu": lambda node, inputs: silu(inputs[0]),
    "sigmoid": lambda node, inputs: sigmoid(inputs[0]),
    "tanh": lambda node, inputs: tanh(inputs[0]),
    "leaky_relu": lambda node, inputs: leaky_relu(
        inputs[0], float(node.attrs.get("negative_slope", 0.01))),
    "elu": lambda node, inputs: elu(inputs[0], float(node.attrs.get("alpha", 1.0))),
    "hardswish": lambda node, inputs: hardswish(inputs[0]),
    "gelu": lambda node, inputs: gelu(inputs[0]),
    "softmax": lambda node, inputs: softmax(inputs[0], int(node.attrs.get("axis", 1))),
    "identity": lambda node, inputs: inputs[0],
    "dropout": lambda node, inputs: inputs[0],  # inference mode: no-op
    "add": lambda node, inputs: _sum_all(inputs),
    "concat": lambda node, inputs: np.concatenate(inputs, axis=int(node.attrs.get("axis", 1))),
    "fused_block": _k_fused_block,
    "fused_restore": _k_fused_restore,
}


def _sum_all(inputs: list[np.ndarray]) -> np.ndarray:
    out = inputs[0] + inputs[1]
    for extra in inputs[2:]:
        out += extra
    return out


def run_node(node: Node, inputs: list[np.ndarray]) -> np.ndarray:
    """Execute one node on concrete arrays (used by executor and tests)."""
    try:
        kernel = KERNELS[node.op]
    except KeyError as exc:
        raise KeyError(f"no kernel registered for op {node.op!r}") from exc
    out = kernel(node, inputs)
    if out.shape != node.output.shape:
        raise RuntimeError(
            f"kernel for {node.op!r} produced shape {out.shape}, "
            f"IR says {node.output.shape} (node {node.name!r})")
    return out
