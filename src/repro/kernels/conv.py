"""Convolution kernels (forward only, NCHW).

Three code paths, all vectorized:

- **pointwise fast path** — 1×1 stride-1 ungrouped convs (the
  fconv/lconv layers that dominate decomposed models) run as one
  ``tensordot`` over the channel axis, no window view needed;
- **depthwise path** — ``groups == C_in`` (CP decomposition's spatial
  factors) runs as one ``einsum`` over per-channel windows;
- **general path** — im2col windows + grouped ``tensordot``.

`conv_transpose2d` is lowered to a stride-1 convolution of the
zero-stuffed input with the spatially flipped, transposed kernel —
the textbook equivalence, kept simple because transposed convs are a
tiny fraction of UNet runtime.
"""

from __future__ import annotations

import numpy as np

from .im2col import pad2d, pair, sliding_windows

__all__ = ["conv2d", "pointwise_conv", "conv_transpose2d"]


def pointwise_conv(x: np.ndarray, weight2d: np.ndarray,
                   bias: np.ndarray | None = None) -> np.ndarray:
    """1×1 stride-1 convolution: ``y[n,o,h,w] = Σ_c W[o,c] x[n,c,h,w]``.

    ``weight2d`` has shape ``(C_out, C_in)``.
    """
    out = np.tensordot(weight2d, x, axes=([1], [1]))  # (Cout, N, H, W)
    out = np.moveaxis(out, 0, 1)
    if bias is not None:
        out = out + bias[None, :, None, None]
    return np.ascontiguousarray(out)


def conv2d(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None,
           stride=(1, 1), padding=(0, 0), groups: int = 1,
           dilation=(1, 1)) -> np.ndarray:
    """General 2D convolution. ``weight``: ``(C_out, C_in/groups, KH, KW)``."""
    cout, cin_g, kh, kw = weight.shape
    sh, sw = pair(stride)
    n, c, _h, _w = x.shape
    if groups == 1 and kh == 1 and kw == 1 and (sh, sw) == (1, 1) \
            and pair(padding) == (0, 0):
        return pointwise_conv(x, weight.reshape(cout, cin_g), bias)

    xp = pad2d(x, padding)
    win = sliding_windows(xp, (kh, kw), (sh, sw), pair(dilation))  # (N, C, OH, OW, KH, KW)

    if groups == 1:
        # contract over (C, KH, KW)
        out = np.tensordot(win, weight, axes=([1, 4, 5], [1, 2, 3]))  # (N,OH,OW,Cout)
        out = np.moveaxis(out, 3, 1)
    elif groups == c and cin_g == 1:
        # depthwise: one spatial filter per channel, channel multiplier cout//c
        mult = cout // c
        w = weight.reshape(c, mult, kh, kw)
        out = np.einsum("nchwkl,cmkl->ncmhw", win, w, optimize=True)
        out = out.reshape(n, cout, out.shape[3], out.shape[4])
    else:
        oh, ow = win.shape[2], win.shape[3]
        out = np.empty((n, cout, oh, ow), dtype=x.dtype)
        cpg_in = c // groups
        cpg_out = cout // groups
        for g in range(groups):
            wg = weight[g * cpg_out:(g + 1) * cpg_out]
            xg = win[:, g * cpg_in:(g + 1) * cpg_in]
            og = np.tensordot(xg, wg, axes=([1, 4, 5], [1, 2, 3]))
            out[:, g * cpg_out:(g + 1) * cpg_out] = np.moveaxis(og, 3, 1)
    if bias is not None:
        out = out + bias[None, :, None, None]
    return np.ascontiguousarray(out)


def conv_transpose2d(x: np.ndarray, weight: np.ndarray,
                     bias: np.ndarray | None = None, stride=(1, 1),
                     padding=(0, 0), output_padding=(0, 0)) -> np.ndarray:
    """Transposed convolution. ``weight``: ``(C_in, C_out, KH, KW)``."""
    cin, cout, kh, kw = weight.shape
    sh, sw = pair(stride)
    ph, pw = pair(padding)
    oph, opw = pair(output_padding)
    n, c, h, w = x.shape
    if c != cin:
        raise ValueError(f"input channels {c} != weight in-channels {cin}")

    # zero-stuff the input according to stride
    hs = (h - 1) * sh + 1
    ws = (w - 1) * sw + 1
    stuffed = np.zeros((n, c, hs, ws), dtype=x.dtype)
    stuffed[:, :, ::sh, ::sw] = x

    # equivalent direct conv: flipped kernel, swapped in/out channels,
    # full padding reduced by the requested padding
    wk = weight[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)  # (Cout, Cin, KH, KW)
    pad_h = kh - 1 - ph
    pad_w = kw - 1 - pw
    if pad_h < 0 or pad_w < 0:
        raise ValueError("padding larger than kernel-1 is not supported")
    stuffed = np.pad(stuffed, ((0, 0), (0, 0), (pad_h, pad_h + oph), (pad_w, pad_w + opw)))
    return conv2d(stuffed, np.ascontiguousarray(wk), bias, stride=(1, 1), padding=(0, 0))
