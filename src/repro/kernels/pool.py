"""Pooling kernels (NCHW)."""

from __future__ import annotations

import numpy as np

from .im2col import pad2d, pair, sliding_windows

__all__ = ["maxpool2d", "avgpool2d", "global_avgpool", "upsample_nearest"]


def maxpool2d(x: np.ndarray, kernel, stride=None, padding=(0, 0)) -> np.ndarray:
    """Max pooling; padded cells are ``-inf`` so they never win."""
    if stride is None:
        stride = kernel
    neg = np.finfo(x.dtype).min if np.issubdtype(x.dtype, np.floating) else np.iinfo(x.dtype).min
    xp = pad2d(x, padding, value=neg)
    win = sliding_windows(xp, kernel, stride)
    return np.ascontiguousarray(win.max(axis=(4, 5)))


def avgpool2d(x: np.ndarray, kernel, stride=None, padding=(0, 0)) -> np.ndarray:
    """Average pooling (count_include_pad semantics, matching the common
    framework default for padded average pooling)."""
    if stride is None:
        stride = kernel
    xp = pad2d(x, padding, value=0.0)
    win = sliding_windows(xp, kernel, stride)
    return np.ascontiguousarray(win.mean(axis=(4, 5), dtype=x.dtype))


def global_avgpool(x: np.ndarray) -> np.ndarray:
    return x.mean(axis=(2, 3), keepdims=True, dtype=x.dtype)


def upsample_nearest(x: np.ndarray, scale: int) -> np.ndarray:
    if scale == 1:
        return x
    return np.repeat(np.repeat(x, scale, axis=2), scale, axis=3)
