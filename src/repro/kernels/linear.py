"""Dense / normalization kernels."""

from __future__ import annotations

import numpy as np

__all__ = ["linear", "batchnorm2d"]


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """``y = x @ W.T + b`` with ``W``: ``(out_features, in_features)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def batchnorm2d(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                mean: np.ndarray, var: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Inference-mode batch normalization with running statistics."""
    scale = gamma / np.sqrt(var + eps)
    shift = beta - mean * scale
    return x * scale[None, :, None, None] + shift[None, :, None, None]
