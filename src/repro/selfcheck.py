"""Installation self-check: one small end-to-end pass over every claim.

``python -m repro selfcheck`` runs miniature versions of the core
invariants in a few seconds and prints a scorecard — the quick "is my
install sane?" gate before launching the full test or benchmark suites.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["CheckResult", "run_selfcheck", "CHECKS"]


@dataclass(frozen=True)
class CheckResult:
    name: str
    passed: bool
    seconds: float
    detail: str


def _tiny_graph(seed: int = 0):
    from .ir import GraphBuilder

    b = GraphBuilder("selfcheck", seed=seed)
    x = b.input("x", (2, 12, 16, 16))
    h = b.relu(b.conv2d(x, 24, 3, padding=1, name="c1"))
    skip = h
    h = b.maxpool2d(h, 2)
    h = b.relu(b.conv2d(h, 32, 3, padding=1, name="c2"))
    h = b.upsample_nearest(h, 2)
    h = b.concat(skip, h)
    h = b.relu(b.conv2d(h, 24, 3, padding=1, name="c3"))
    return b.finish(h)


def _check_kernels() -> str:
    from .kernels import conv2d, fused_block

    rng = np.random.default_rng(0)
    x = rng.normal(size=(1, 3, 8, 8))
    w = rng.normal(size=(4, 3, 3, 3))
    out = conv2d(x, w, None, padding=(1, 1))
    assert out.shape == (1, 4, 8, 8)
    w1, w2 = rng.normal(size=(16, 3)), rng.normal(size=(2, 16))
    fused = fused_block(x, w1, None, w2, None, act="relu", block_size=5)
    assert fused.shape == (1, 2, 8, 8)
    return "conv2d + fused_block shapes OK"


def _check_decompositions() -> str:
    from .decompose import DecompositionConfig, decompose_graph

    g = _tiny_graph()
    for method in ("tucker", "cp", "tt"):
        dg = decompose_graph(g, DecompositionConfig(method=method, ratio=0.3,
                                                    cp_iters=5))
        dg.validate()
    return "tucker/cp/tt rewrites validate"


def _check_optimizer_equivalence() -> str:
    from .core import compare_graphs, optimize
    from .decompose import DecompositionConfig, decompose_graph

    g = _tiny_graph()
    dg = decompose_graph(g, DecompositionConfig(ratio=0.3))
    opt, report = optimize(dg)
    rng = np.random.default_rng(1)
    inputs = {"x": rng.normal(size=(2, 12, 16, 16)).astype(np.float32)}
    eq = compare_graphs(dg, opt, inputs)
    assert eq.within(1e-3, 1e-5), f"divergence {eq.max_abs_error:.2e}"
    assert report.peak_after < report.peak_before
    return (f"peak {report.peak_before / 1024:.0f} -> "
            f"{report.peak_after / 1024:.0f} KiB, outputs equal")


def _check_estimator_parity() -> str:
    from .core import estimate_peak_internal, optimize
    from .decompose import DecompositionConfig, decompose_graph
    from .runtime import execute

    g = _tiny_graph()
    opt, _ = optimize(decompose_graph(g, DecompositionConfig(ratio=0.3)))
    rng = np.random.default_rng(2)
    inputs = {"x": rng.normal(size=(2, 12, 16, 16)).astype(np.float32)}
    measured = execute(opt, inputs).memory.peak_internal_bytes
    estimated = estimate_peak_internal(opt)
    assert measured == estimated, f"{measured} != {estimated}"
    return f"static estimate == measured ({measured} B)"


def _check_arena() -> str:
    from .runtime import execute, execute_in_arena

    g = _tiny_graph()
    rng = np.random.default_rng(3)
    inputs = {"x": rng.normal(size=(2, 12, 16, 16)).astype(np.float32)}
    want = execute(g, inputs).output()
    outputs, plan = execute_in_arena(g, inputs)
    np.testing.assert_allclose(outputs[g.outputs[0].name], want, atol=1e-5)
    return f"arena-backed execution OK ({plan.arena_bytes / 1024:.0f} KiB arena)"


def _check_training() -> str:
    from .train import SGDConfig, train_classifier
    from .ir import GraphBuilder

    b = GraphBuilder("sc_train", seed=0)
    x = b.input("image", (8, 3, 8, 8))
    h = b.relu(b.conv2d(x, 8, 3, padding=1))
    h = b.flatten(b.global_avgpool(h))
    g = b.finish(b.linear(h, 3))
    result = train_classifier(g, steps=8, num_classes=3, hw=8,
                              config=SGDConfig(learning_rate=0.05))
    assert result.losses[-1] < result.losses[0] * 1.5
    return f"loss {result.losses[0]:.3f} -> {result.losses[-1]:.3f}"


CHECKS: list[tuple[str, Callable[[], str]]] = [
    ("kernels", _check_kernels),
    ("decompositions", _check_decompositions),
    ("temco-equivalence", _check_optimizer_equivalence),
    ("estimator-parity", _check_estimator_parity),
    ("arena-execution", _check_arena),
    ("training", _check_training),
]


def run_selfcheck(verbose: bool = True) -> list[CheckResult]:
    """Run every check; returns results (and prints a scorecard)."""
    results = []
    for name, fn in CHECKS:
        start = time.perf_counter()
        try:
            detail = fn()
            passed = True
        except Exception as exc:  # noqa: BLE001 - scorecard reports anything
            detail = f"{type(exc).__name__}: {exc}"
            passed = False
        results.append(CheckResult(name=name, passed=passed,
                                   seconds=time.perf_counter() - start,
                                   detail=detail))
    if verbose:
        width = max(len(r.name) for r in results)
        for r in results:
            mark = "PASS" if r.passed else "FAIL"
            print(f"[{mark}] {r.name:<{width}}  {r.seconds * 1e3:7.1f} ms  {r.detail}")
        ok = sum(r.passed for r in results)
        print(f"\n{ok}/{len(results)} checks passed")
    return results
