"""Fleet serving: a multi-replica control plane over one host budget.

TeMCO-style memory reduction is only half the serving story — the
other half is *what to do with the freed memory*.  This package spends
it on replication: ``K`` :class:`~repro.serve.InferenceServer`
replicas of one compiled graph share a single host budget (each
planned to ``host_budget / K`` by :func:`repro.plan.plan_memory`),
fronted by a router that makes the fleet look like one very reliable
server.

- :mod:`repro.fleet.pool` — :class:`ReplicaPool`: replica lifecycle,
  liveness/readiness health checks, outlier ejection with
  exponential-backoff re-admission, graceful per-replica drain,
- :mod:`repro.fleet.router` — :class:`Router`: least-outstanding
  balancing, deadline-aware hedged retries (first response wins),
  bounded retry-with-backoff, zero-downtime rolling reload.  A
  :class:`Router` is *servable*: :func:`repro.serve.serve_http` and
  :func:`repro.serve.run_loadgen` drive it exactly like a single
  server,
- :mod:`repro.fleet.faults` — :class:`FaultPolicy`: deterministic
  kill/stall/slow fault injection for failover testing (the CI smoke
  kills a replica mid-run and asserts zero client-visible errors).

Quick use::

    from repro.fleet import PoolConfig, ReplicaPool, Router

    pool = ReplicaPool(graph, PoolConfig(replicas=3, host_budget="80%"))
    with Router(pool) as fleet:
        outputs = fleet.infer({"x": one_sample}, timeout=10.0)

See ``docs/fleet.md`` for the architecture, the hedging timeline and
the rolling-reload sequence, and ``repro fleet`` / ``repro loadgen
--fleet`` on the CLI.
"""

from .faults import FAULT_KINDS, FaultPolicy
from .pool import (PoolConfig, Replica, ReplicaPool, ReplicaSpec,
                   ReplicaState, split_host_budget)
from .router import FleetFuture, Router, RouterConfig

__all__ = [
    "FAULT_KINDS",
    "FaultPolicy",
    "ReplicaState",
    "ReplicaSpec",
    "Replica",
    "PoolConfig",
    "ReplicaPool",
    "split_host_budget",
    "FleetFuture",
    "RouterConfig",
    "Router",
]
