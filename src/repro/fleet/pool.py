"""The replica pool: N warm servers packed under one host budget.

TeMCO's memory reductions (and PR 6's budget planner) create the
headroom; the pool converts it into capacity by running ``K``
:class:`~repro.serve.InferenceServer` replicas of the same compiled
graph on one host.  Each replica is planned against ``host_budget /
K`` via :func:`repro.plan.plan_memory`, so the *fleet's* resident
internal-tensor footprint stays under the host budget no matter which
replicas are busy.

The pool owns replica *lifecycle*, not routing (that's
:class:`~repro.fleet.router.Router`):

- **liveness/readiness** — a background health loop polls each
  replica's :meth:`~repro.serve.InferenceServer.healthy` (the same
  predicate ``GET /healthz`` serves) every
  ``PoolConfig.health_interval_s``,
- **outlier ejection** — a replica that fails consecutive requests
  (router-reported) or goes unhealthy is ejected: taken out of the
  routable set and scheduled for re-admission after an exponential
  backoff (``readmit_backoff_s * 2^(ejections-1)``, capped),
- **re-admission** — an ejected replica is *restarted* (a fresh
  server built from its spec) once its backoff expires, so a crashed
  process costs capacity temporarily, not permanently,
- **drain / reload** — :meth:`drain_replica` stops routing to one
  replica and gracefully drains its in-flight work
  (:meth:`~repro.serve.InferenceServer.drain`); :meth:`reload_replica`
  then swaps in a replacement spec (new graph / tuned plan / budget)
  — the router's rolling reload walks the pool one replica at a time
  so readiness never drops below ``K - 1``.

Every state transition lands on the shared fleet metrics registry
under replica-labeled names (``fleet.replica_up.replica.<id>`` →
``repro_fleet_replica_up{replica="<id>"}`` on ``/metrics``).
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field

from ..core import estimate_peak_internal
from ..ir.graph import Graph
from ..obs import MetricsRegistry, TaggedTracer, get_tracer
from ..plan import MemoryPlan, parse_budget, plan_memory
from ..serve.server import (InferenceServer, ServeError, ServeFuture,
                            ServerClosed, ServerConfig)
from .faults import FaultPolicy

logger = logging.getLogger(__name__)

__all__ = ["ReplicaState", "ReplicaSpec", "Replica", "PoolConfig",
           "ReplicaPool", "split_host_budget"]


class ReplicaState:
    """Lifecycle states (plain strings: they land in metrics/JSON)."""

    READY = "ready"        #: routable
    DRAINING = "draining"  #: finishing in-flight, not routable
    EJECTED = "ejected"    #: outlier, waiting out its backoff
    STOPPED = "stopped"    #: drained and closed (mid-reload)


@dataclass
class ReplicaSpec:
    """Everything needed to (re)build one replica's server."""

    graph: Graph
    server_config: ServerConfig = field(default_factory=ServerConfig)
    memory_plan: MemoryPlan | None = None


class Replica:
    """One managed server plus its routing/health bookkeeping.

    Mutable counters (``outstanding``, ``routed``,
    ``consecutive_failures``) are guarded by the owning pool's lock.
    """

    def __init__(self, replica_id: int, spec: ReplicaSpec) -> None:
        self.id = replica_id
        self.spec = spec
        self.server: InferenceServer | None = None
        self.state = ReplicaState.STOPPED
        #: restarts so far; faults fire on generation 0 only
        self.generation = 0
        #: requests the router has sent here (drives FaultPolicy.after)
        self.routed = 0
        #: requests submitted here and not yet settled (the
        #: least-outstanding balancing signal)
        self.outstanding = 0
        self.consecutive_failures = 0
        self.ejections = 0
        #: monotonic time an ejected replica becomes re-admittable
        self.readmit_at = 0.0
        #: fault-injection modes (see repro.fleet.faults)
        self.stalled = False
        self.slow_s = 0.0

    @property
    def ready(self) -> bool:
        return (self.state == ReplicaState.READY
                and self.server is not None and self.server.healthy())

    def submit(self, inputs, *, deadline_s: float | None = None,
               trace_id: str | None = None) -> ServeFuture:
        """Submit through this replica, honouring injected faults."""
        if self.stalled:
            # black hole: accepted, never resolved — the router's
            # hedging or attempt timeout rescues the request
            return ServeFuture(request_id=-1, samples=0)
        if self.slow_s > 0:
            return self._submit_slowly(inputs, deadline_s=deadline_s,
                                       trace_id=trace_id)
        server = self.server
        if server is None:
            raise ServerClosed(f"replica {self.id} has no running server")
        return server.submit(inputs, deadline_s=deadline_s,
                             trace_id=trace_id)

    def _submit_slowly(self, inputs, *, deadline_s: float | None,
                       trace_id: str | None = None) -> ServeFuture:
        # a slow replica delays its *response*, not the caller's submit;
        # relaying through a proxy future keeps the router free to hedge
        # while this replica dawdles
        proxy = ServeFuture(request_id=-1, samples=0)
        delay = self.slow_s

        def _relay() -> None:
            time.sleep(delay)
            server = self.server
            if server is None:
                proxy._reject(ServerClosed(
                    f"replica {self.id} has no running server"))
                return
            try:
                inner = server.submit(inputs, deadline_s=deadline_s,
                                      trace_id=trace_id)
                proxy._resolve(inner.result(None), delay + inner.latency_s)
            except ServeError as error:
                proxy._reject(error)

        threading.Thread(target=_relay, daemon=True,
                         name=f"repro-fleet-slow-{self.id}").start()
        return proxy

    def describe(self) -> dict:
        return {"id": self.id, "state": self.state,
                "generation": self.generation, "routed": self.routed,
                "outstanding": self.outstanding,
                "ejections": self.ejections}


def split_host_budget(graph: Graph, host_budget: str | int,
                      replicas: int) -> tuple[MemoryPlan, int]:
    """Split one host budget across ``replicas`` equal shares.

    ``host_budget`` uses the :func:`repro.plan.parse_budget` grammar;
    a percentage is relative to ``replicas ×`` the graph's unplanned
    predicted peak, so ``"60%"`` plans every replica to 60% of its own
    peak and ``"100%"`` packs exactly ``replicas`` unplanned copies.
    Returns ``(per_replica_plan, host_budget_bytes)``; raises
    :class:`~repro.plan.InfeasibleBudget` when a share is below the
    graph's working-set floor.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    reference = estimate_peak_internal(graph) * replicas
    host_bytes = (host_budget if isinstance(host_budget, int)
                  else parse_budget(host_budget, reference=reference))
    per_replica = host_bytes // replicas
    return plan_memory(graph, per_replica), host_bytes


@dataclass(frozen=True)
class PoolConfig:
    """Replica-count, budget and health-policy knobs of one pool."""

    replicas: int = 2
    #: shared host budget (parse_budget grammar) split evenly across
    #: replicas; None serves unplanned
    host_budget: str | None = None
    #: consecutive router-reported failures before ejection
    eject_after_failures: int = 3
    #: first re-admission backoff; doubles per ejection
    readmit_backoff_s: float = 0.25
    readmit_backoff_max_s: float = 5.0
    health_interval_s: float = 0.05
    #: per-replica server knobs
    server: ServerConfig = field(default_factory=ServerConfig)

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.eject_after_failures < 1:
            raise ValueError("eject_after_failures must be >= 1, got "
                             f"{self.eject_after_failures}")
        if self.readmit_backoff_s <= 0 or self.readmit_backoff_max_s <= 0:
            raise ValueError("re-admission backoffs must be > 0")
        if self.health_interval_s <= 0:
            raise ValueError("health_interval_s must be > 0, got "
                             f"{self.health_interval_s}")


class ReplicaPool:
    """Build, watch, eject, re-admit and reload N replicas."""

    def __init__(self, graph: Graph, config: PoolConfig | None = None, *,
                 metrics: MetricsRegistry | None = None,
                 tracer=None) -> None:
        graph.validate()
        self.graph = graph
        self.config = config or PoolConfig()
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._lock = threading.RLock()
        self._closed = False
        self._health_thread: threading.Thread | None = None
        self._health_stop = threading.Event()
        self.memory_plan: MemoryPlan | None = None
        self.host_budget_bytes: int | None = None
        if self.config.host_budget is not None:
            self.memory_plan, self.host_budget_bytes = split_host_budget(
                graph, self.config.host_budget, self.config.replicas)
            self.metrics.gauge("fleet.host_budget_bytes",
                               float(self.host_budget_bytes))
            self.metrics.gauge(
                "fleet.replica_budget_bytes",
                float(self.memory_plan.budget_bytes or 0))
        spec = ReplicaSpec(graph=graph, server_config=self.config.server,
                           memory_plan=self.memory_plan)
        self.replicas = [Replica(i, spec)
                         for i in range(self.config.replicas)]
        self.metrics.gauge("fleet.replicas", float(self.config.replicas))

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ReplicaPool":
        with self._lock:
            if self._closed:
                raise ServerClosed("pool already closed")
            for replica in self.replicas:
                if replica.server is None:
                    self._start_replica(replica)
        if self._health_thread is None:
            self._health_thread = threading.Thread(
                target=self._health_loop, name="repro-fleet-health",
                daemon=True)
            self._health_thread.start()
        logger.info("fleet pool up: %d replica(s) of %s%s",
                    len(self.replicas), self.graph.name,
                    "" if self.memory_plan is None else
                    f", {self.memory_plan.summary()} per replica")
        return self

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._health_stop.set()
        if self._health_thread is not None:
            self._health_thread.join(5.0)
            self._health_thread = None
        for replica in self.replicas:
            server, replica.server = replica.server, None
            replica.state = ReplicaState.STOPPED
            self._gauge_up(replica)
            if server is not None:
                server.close()

    def __enter__(self) -> "ReplicaPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _start_replica(self, replica: Replica) -> None:
        """Build and start one server from the replica's spec (under
        the pool lock; server startup is thread-spawning only)."""
        tracer = (TaggedTracer(self.tracer, replica=replica.id)
                  if self.tracer.enabled else None)
        replica.server = InferenceServer(
            replica.spec.graph, replica.spec.server_config,
            tracer=tracer, memory_plan=replica.spec.memory_plan).start()
        replica.state = ReplicaState.READY
        replica.stalled = False
        replica.slow_s = 0.0
        replica.consecutive_failures = 0
        self._gauge_up(replica)

    # -- routing surface (called by the Router, under our lock) --------

    def pick(self, exclude: frozenset[int] | set[int] = frozenset()
             ) -> Replica | None:
        """The ready replica with the fewest outstanding requests
        (ties break toward the lowest id), or None."""
        with self._lock:
            candidates = [r for r in self.replicas
                          if r.id not in exclude and r.ready]
            if not candidates:
                return None
            return min(candidates, key=lambda r: (r.outstanding, r.id))

    def note_submit(self, replica: Replica) -> None:
        with self._lock:
            replica.routed += 1
            replica.outstanding += 1
            self.metrics.inc(f"fleet.routed.replica.{replica.id}")

    def note_settle(self, replica: Replica) -> None:
        with self._lock:
            replica.outstanding = max(0, replica.outstanding - 1)

    def record_success(self, replica: Replica) -> None:
        with self._lock:
            replica.consecutive_failures = 0

    def record_failure(self, replica: Replica, reason: str) -> None:
        """Router-reported request failure; ejects on a streak."""
        with self._lock:
            replica.consecutive_failures += 1
            if (replica.state == ReplicaState.READY
                    and replica.consecutive_failures
                    >= self.config.eject_after_failures):
                self._eject(replica, reason)

    # -- ejection / re-admission ---------------------------------------

    def eject(self, replica: Replica, reason: str) -> None:
        with self._lock:
            if replica.state == ReplicaState.READY:
                self._eject(replica, reason)

    def _eject(self, replica: Replica, reason: str) -> None:
        replica.state = ReplicaState.EJECTED
        replica.ejections += 1
        backoff = min(
            self.config.readmit_backoff_s * 2 ** (replica.ejections - 1),
            self.config.readmit_backoff_max_s)
        replica.readmit_at = time.monotonic() + backoff
        self.metrics.inc(f"fleet.ejections.reason.{reason}")
        self._gauge_up(replica)
        logger.warning("ejected replica %d (%s); re-admission in %.2f s",
                       replica.id, reason, backoff)

    def _readmit(self, replica: Replica) -> None:
        old, replica.server = replica.server, None
        if old is not None:
            old.close(timeout=1.0)
        replica.generation += 1
        self._start_replica(replica)
        self.metrics.inc("fleet.readmissions")
        logger.info("re-admitted replica %d (generation %d)",
                    replica.id, replica.generation)

    def _health_loop(self) -> None:
        while not self._health_stop.wait(self.config.health_interval_s):
            with self._lock:
                if self._closed:
                    return
                now = time.monotonic()
                for replica in self.replicas:
                    if (replica.state == ReplicaState.READY
                            and (replica.server is None
                                 or not replica.server.healthy())):
                        self._eject(replica, "unhealthy")
                    elif (replica.state == ReplicaState.EJECTED
                          and now >= replica.readmit_at):
                        self._readmit(replica)

    # -- drain / reload -------------------------------------------------

    def drain_replica(self, replica: Replica,
                      timeout: float | None = 30.0) -> bool:
        """Stop routing to ``replica``, drain its in-flight work, stop
        it.  Returns False when the drain timed out (the server closed
        anyway)."""
        with self._lock:
            if replica.state not in (ReplicaState.READY,
                                     ReplicaState.EJECTED):
                return True
            replica.state = ReplicaState.DRAINING
            self._gauge_up(replica)
            server = replica.server
        drained = server.drain(timeout) if server is not None else True
        with self._lock:
            replica.server = None
            replica.state = ReplicaState.STOPPED
        return drained

    def reload_replica(self, replica: Replica, spec: ReplicaSpec,
                       timeout: float | None = 30.0) -> bool:
        """Drain ``replica`` then restart it from ``spec`` — one step
        of a rolling reload.  Returns the drain verdict."""
        drained = self.drain_replica(replica, timeout)
        with self._lock:
            replica.spec = spec
            replica.generation += 1
            self._start_replica(replica)
        self.metrics.inc("fleet.reloads")
        return drained

    # -- fault injection -------------------------------------------------

    def apply_fault(self, replica: Replica, fault: FaultPolicy) -> None:
        """Fire ``fault`` against ``replica`` (router-triggered at the
        armed request count)."""
        self.metrics.inc(f"fleet.faults.reason.{fault.kind}")
        logger.warning("fault injected: %s", fault.describe())
        if fault.kind == "kill":
            server = replica.server
            if server is not None:
                server.close(timeout=1.0)
        elif fault.kind == "stall":
            replica.stalled = True
        else:  # slow
            replica.slow_s = fault.slow_s

    # -- introspection ---------------------------------------------------

    def ready_count(self) -> int:
        with self._lock:
            return sum(1 for r in self.replicas if r.ready)

    def _gauge_up(self, replica: Replica) -> None:
        self.metrics.gauge(f"fleet.replica_up.replica.{replica.id}",
                           1.0 if replica.state == ReplicaState.READY
                           else 0.0)

    def describe(self) -> list[dict]:
        with self._lock:
            return [replica.describe() for replica in self.replicas]
