"""The fleet router: least-outstanding balancing, hedges, retries.

:class:`Router` sits in front of a :class:`~repro.fleet.pool.ReplicaPool`
and implements the same *servable* protocol as a single
:class:`~repro.serve.InferenceServer` (``graph`` / ``slo`` /
``submit`` / ``stats`` / ``health_doc`` / ``metrics_text``), so the
HTTP frontend (:func:`repro.serve.serve_http`) and the load generator
(:func:`repro.serve.run_loadgen`) drive a whole fleet unchanged.

Per request the router runs a small orchestration (one daemon thread,
resolved through a :class:`FleetFuture`):

- **balancing** — route to the ready replica with the fewest
  outstanding requests,
- **hedged retries** — if the primary attempt hasn't resolved after a
  hedge delay, launch the same request on a sibling and take
  whichever responds first (the loser is abandoned to a reaper so its
  outstanding count settles).  With a deadline, the hedge delay is
  ``remaining − p95`` (projected from the fleet latency histogram,
  clamped): hedge exactly when waiting out the primary would likely
  bust the deadline,
- **bounded retry with backoff** — a failed attempt (replica crashed,
  draining, queue full, worker error) is retried on a sibling up to
  ``RouterConfig.max_attempts`` times with doubling backoff; replica
  failures also feed the pool's outlier ejection.  A crashed replica
  therefore costs the client *latency*, never an error, as long as a
  sibling is up,
- **deadlines** — the request's deadline caps the whole orchestration;
  expiry resolves the future with
  :class:`~repro.serve.DeadlineExceeded` exactly as a single server
  would.

Zero-downtime operations: :meth:`Router.drain` stops admissions and
gracefully drains every replica; :meth:`Router.rolling_reload` swaps
replicas one at a time (drain → new spec → restart → wait ready), so
readiness never drops below ``K − 1`` while the fleet keeps serving.

Everything lands on the pool's shared metrics registry
(``fleet.hedges``, ``fleet.retries.reason.*`` → the labeled
``repro_fleet_retries_total`` family, …) and — when tracing — as
``fleet.*`` spans/instants stitched to the request's ``trace_id``.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..obs import SLOMonitor, new_trace_id
from ..serve.batcher import request_samples
from ..serve.server import (DeadlineExceeded, Overloaded, ServeError,
                            ServeFuture, ServerClosed, ServerDraining)
from .faults import FaultPolicy
from .pool import Replica, ReplicaPool, ReplicaSpec

logger = logging.getLogger(__name__)

__all__ = ["FleetFuture", "RouterConfig", "Router"]


class FleetFuture(ServeFuture):
    """Completion handle for one routed request.

    Same contract as :class:`~repro.serve.ServeFuture` (it *is* one),
    plus attempt bookkeeping: resolution may come from any replica,
    after any number of retries/hedges."""

    def __init__(self, request_id: int, samples: int,
                 trace_id: str = "") -> None:
        super().__init__(request_id, samples, trace_id)
        #: submission attempts made (primary + retries + hedges)
        self.attempts = 0
        #: id of the replica whose response won, or None on failure
        self.served_by: int | None = None


@dataclass(frozen=True)
class RouterConfig:
    """Retry / hedging knobs of the fleet router."""

    #: total submission attempts per request (primary + retries);
    #: hedges don't consume attempts
    max_attempts: int = 4
    #: backoff before a retry; doubles per retry, capped below
    retry_backoff_s: float = 0.005
    retry_backoff_max_s: float = 0.1
    #: hedging on/off
    hedge: bool = True
    #: hedge delay without a deadline (and the clamp ceiling with one)
    hedge_delay_s: float = 0.05
    #: clamp floor for the deadline-aware hedge delay
    hedge_min_delay_s: float = 0.002
    #: per-attempt cap: an attempt silent this long is abandoned as
    #: stalled and retried (rescues black-holed replicas)
    attempt_timeout_s: float = 10.0
    #: completion poll cadence of the orchestration loop
    poll_interval_s: float = 0.001

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.retry_backoff_s < 0 or self.retry_backoff_max_s <= 0:
            raise ValueError("retry backoffs must be positive")
        if self.hedge_delay_s <= 0 or self.hedge_min_delay_s <= 0:
            raise ValueError("hedge delays must be > 0")
        if self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be > 0, got "
                             f"{self.attempt_timeout_s}")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be > 0, got "
                             f"{self.poll_interval_s}")


def _failure_reason(error: BaseException | None) -> str:
    """The metrics label for one failed attempt — the ``reason`` on
    the ``repro_fleet_retries_total`` / ``repro_fleet_ejections_total``
    Prometheus families."""
    if isinstance(error, DeadlineExceeded):
        return "deadline"
    if isinstance(error, ServerClosed):  # includes ServerDraining
        return "replica_closed"
    if isinstance(error, Overloaded):
        return "overloaded"
    return "worker_error"


class _Attempt:
    """One in-flight submission of a request to one replica."""

    def __init__(self, future: ServeFuture, replica: Replica,
                 started_at: float, hedged: bool) -> None:
        self.future = future
        self.replica = replica
        self.started_at = started_at
        self.hedged = hedged


class Router:
    """Route requests across a replica pool; never hang, rarely fail."""

    def __init__(self, pool: ReplicaPool, config: RouterConfig | None = None,
                 *, slo: SLOMonitor | None = None,
                 fault: FaultPolicy | None = None) -> None:
        self.pool = pool
        self.config = config or RouterConfig()
        self.metrics = pool.metrics
        self.tracer = pool.tracer
        self.slo = slo
        self.fault = fault
        self.graph = pool.graph
        self.graph_batch = pool.graph.inputs[0].shape[0]
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._in_flight = 0
        self._closed = False
        self._draining = False
        self._fault_fired = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "Router":
        self.pool.start()
        return self

    def close(self) -> None:
        with self._lock:
            self._closed = True
        self.pool.close()

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful fleet shutdown: stop admitting, wait out in-flight
        requests, drain every replica, close the pool.  Returns False
        when the timeout expired with work still pending."""
        with self._lock:
            if self._closed:
                return True
            self._draining = True
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        drained = True
        while True:
            with self._lock:
                if self._in_flight == 0:
                    break
            if deadline is not None and time.monotonic() > deadline:
                drained = False
                break
            time.sleep(0.002)
        for replica in self.pool.replicas:
            remaining = (None if deadline is None
                         else max(0.1, deadline - time.monotonic()))
            if not self.pool.drain_replica(replica, remaining):
                drained = False
        self.close()
        return drained

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def draining(self) -> bool:
        return self._draining and not self._closed

    def healthy(self) -> bool:
        """Routable: at least one ready replica and admitting work."""
        return (not self._closed and not self._draining
                and self.pool.ready_count() > 0)

    # -- zero-downtime reload ------------------------------------------

    def rolling_reload(self, spec: ReplicaSpec | None = None, *,
                       timeout: float | None = 30.0) -> bool:
        """Swap every replica to ``spec`` (default: its current spec,
        i.e. a rolling restart) one at a time: drain → rebuild → wait
        ready.  At most one replica is ever out of rotation, so a
        ``K``-replica fleet keeps at least ``K − 1`` ready throughout.
        Returns False when any replica's drain timed out or the
        rebuilt replica failed to come back ready."""
        ok = True
        for replica in self.pool.replicas:
            target = spec or replica.spec
            if not self.pool.reload_replica(replica, target, timeout):
                ok = False
            wait_until = time.monotonic() + (timeout or 30.0)
            while not replica.ready:
                if time.monotonic() > wait_until:
                    ok = False
                    break
                time.sleep(0.002)
        return ok

    # -- admission -----------------------------------------------------

    def submit(self, inputs: dict[str, np.ndarray] | np.ndarray, *,
               deadline_s: float | None = None) -> FleetFuture:
        """Admit one request to the fleet; returns its future.

        Never blocks on replica work: routing, hedging and retries run
        on a per-request orchestration thread.  Raises only for a
        closed/draining router; every downstream failure arrives
        through the future as the same typed errors a single server
        raises."""
        with self._lock:
            if self._closed:
                raise ServerClosed("fleet router is closed")
            if self._draining:
                raise ServerDraining("fleet router is draining: finishing "
                                     "in-flight requests, admitting none")
            request_id = next(self._ids)
            self._in_flight += 1
        if isinstance(inputs, np.ndarray):
            if len(self.graph.inputs) != 1:
                with self._lock:
                    self._in_flight -= 1
                raise ValueError(
                    f"graph has {len(self.graph.inputs)} inputs; pass a dict")
            inputs = {self.graph.inputs[0].name: inputs}
        try:
            samples = request_samples(self.graph, inputs)
        except Exception:
            with self._lock:
                self._in_flight -= 1
            raise
        trace_id = new_trace_id()
        future = FleetFuture(request_id, samples, trace_id)
        self.metrics.inc("fleet.requests")
        now = time.monotonic()
        deadline_at = None if deadline_s is None else now + deadline_s
        if self.tracer.enabled:
            admit_us = self.tracer.now_us()
            self.tracer.complete(
                "fleet.admit", admit_us,
                max(self.tracer.now_us() - admit_us, 1.0),
                category="fleet", request_id=request_id,
                trace_id=trace_id, samples=samples)
            self.tracer.flow("fleet.request", request_id, "start",
                             ts_us=admit_us, trace_id=trace_id)
        worker = threading.Thread(
            target=self._orchestrate,
            args=(future, inputs, deadline_s, deadline_at, now),
            name=f"repro-fleet-req-{request_id}", daemon=True)
        worker.start()
        return future

    def infer(self, inputs: dict[str, np.ndarray] | np.ndarray, *,
              deadline_s: float | None = None,
              timeout: float | None = None) -> dict[str, np.ndarray]:
        """Synchronous convenience: :meth:`submit` + wait."""
        return self.submit(inputs, deadline_s=deadline_s).result(timeout)

    # -- orchestration (per-request thread) -----------------------------

    def _orchestrate(self, future: FleetFuture, inputs, deadline_s,
                     deadline_at, admitted_at) -> None:
        try:
            self._route(future, inputs, deadline_s, deadline_at,
                        admitted_at)
        except BaseException as exc:  # noqa: BLE001 — never lose a future
            logger.exception("fleet orchestration failed")
            self._finish_error(future, ServeError(
                f"fleet orchestration failed: {exc!r}"))
        finally:
            with self._lock:
                self._in_flight -= 1

    def _route(self, future: FleetFuture, inputs, deadline_s,
               deadline_at, admitted_at) -> None:
        config = self.config
        failed: set[int] = set()
        reasons: list[str] = []
        last_error: BaseException | None = None
        backoff = config.retry_backoff_s
        for attempt_index in range(config.max_attempts):
            if deadline_at is not None and time.monotonic() > deadline_at:
                self._finish_error(future, DeadlineExceeded(
                    f"request {future.request_id} expired after "
                    f"{len(reasons)} attempt(s)"))
                return
            if attempt_index > 0:
                reason = reasons[-1] if reasons else "unknown"
                self.metrics.inc(f"fleet.retries.reason.{reason}")
                if self.tracer.enabled:
                    self.tracer.instant(
                        "fleet.retry", category="fleet",
                        request_id=future.request_id,
                        trace_id=future.trace_id, reason=reason,
                        attempt=attempt_index)
                time.sleep(backoff)
                backoff = min(backoff * 2, config.retry_backoff_max_s)
            replica = self.pool.pick(failed) or self.pool.pick()
            if replica is None:
                reasons.append("no_ready_replica")
                last_error = Overloaded(
                    "no ready replica in the fleet; retry with backoff")
                continue
            attempt, submit_error = self._submit_attempt(
                future, replica, inputs, deadline_s, hedged=False)
            if attempt is None:
                failed.add(replica.id)
                reasons.append(_failure_reason(submit_error))
                last_error = submit_error
                continue
            verdict, last_error, reason = self._await_attempts(
                future, attempt, inputs, deadline_s, deadline_at,
                admitted_at, failed)
            if verdict:
                return
            if isinstance(last_error, DeadlineExceeded):
                self._finish_error(future, last_error)
                return
            reasons.append(reason)
        # attempts exhausted: surface the last typed error
        final = last_error or ServeError(
            f"request {future.request_id} failed after "
            f"{config.max_attempts} attempt(s)")
        if all(r in ("no_ready_replica", "overloaded") for r in reasons) \
                and not isinstance(final, Overloaded):
            final = Overloaded(str(final))
        self._finish_error(future, final)

    def _submit_attempt(self, future: FleetFuture, replica: Replica,
                        inputs, deadline_s, *, hedged: bool
                        ) -> tuple[_Attempt | None, BaseException | None]:
        """Fire the armed fault if due, then submit to ``replica``.
        Returns ``(attempt, None)``, or ``(None, error)`` when
        admission failed."""
        self._maybe_fire_fault(replica)
        self.pool.note_submit(replica)
        future.attempts += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "fleet.hedge" if hedged else "fleet.attempt",
                category="fleet", request_id=future.request_id,
                trace_id=future.trace_id, replica=replica.id,
                attempt=future.attempts)
        try:
            inner = replica.submit(inputs, deadline_s=deadline_s,
                                   trace_id=future.trace_id)
        except ServeError as exc:
            self.pool.note_settle(replica)
            self.pool.record_failure(replica, _failure_reason(exc))
            return None, exc
        return _Attempt(inner, replica, time.monotonic(), hedged), None

    def _await_attempts(self, future: FleetFuture, primary: _Attempt,
                        inputs, deadline_s, deadline_at, admitted_at,
                        failed: set[int]
                        ) -> tuple[bool, BaseException | None, str]:
        """Poll the primary (and at most one hedge) until a response,
        a failure, a deadline, or a stall.  Returns ``(resolved,
        last_error, reason)``."""
        config = self.config
        pending = [primary]
        hedge_at = (time.monotonic()
                    + self._hedge_delay(deadline_at)
                    if config.hedge else None)
        last_error: BaseException | None = None
        reason = "stalled"
        while pending:
            for attempt in list(pending):
                if not attempt.future.done():
                    continue
                pending.remove(attempt)
                self._observe_attempt(attempt)
                try:
                    outputs = attempt.future.result(0)
                except ServeError as exc:
                    self.pool.note_settle(attempt.replica)
                    failure_reason = _failure_reason(exc)
                    if not isinstance(exc, DeadlineExceeded):
                        self.pool.record_failure(attempt.replica,
                                                 failure_reason)
                        failed.add(attempt.replica.id)
                    last_error, reason = exc, failure_reason
                    continue
                self._finish_success(future, attempt, outputs,
                                     admitted_at, pending)
                return True, None, "ok"
            now = time.monotonic()
            if deadline_at is not None and now > deadline_at:
                self._abandon(pending)
                return False, DeadlineExceeded(
                    f"request {future.request_id} expired in flight"), \
                    "deadline"
            if (hedge_at is not None and now >= hedge_at
                    and len(pending) == 1 and not pending[0].hedged):
                hedge_at = None
                sibling = self.pool.pick(
                    failed | {a.replica.id for a in pending})
                if sibling is not None:
                    self.metrics.inc("fleet.hedges")
                    hedge, _ = self._submit_attempt(
                        future, sibling, inputs, deadline_s, hedged=True)
                    if hedge is not None:
                        pending.append(hedge)
            if pending and all(now - a.started_at > config.attempt_timeout_s
                               for a in pending):
                self._abandon(pending)
                for attempt in pending:
                    self.pool.record_failure(attempt.replica, "stalled")
                    failed.add(attempt.replica.id)
                return False, ServeError(
                    f"request {future.request_id}: all attempts stalled "
                    f"past {config.attempt_timeout_s} s"), "stalled"
            time.sleep(config.poll_interval_s)
        return False, last_error, reason

    def _finish_success(self, future: FleetFuture, winner: _Attempt,
                        outputs, admitted_at, pending: list[_Attempt]
                        ) -> None:
        latency = time.monotonic() - admitted_at
        future.served_by = winner.replica.id
        self.pool.note_settle(winner.replica)
        self.pool.record_success(winner.replica)
        if winner.hedged:
            self.metrics.inc("fleet.hedge_wins")
        self.metrics.inc("fleet.completed")
        self.metrics.observe("fleet.latency_ms", latency * 1e3)
        if self.slo is not None:
            self.slo.record(latency, ok=True)
        if self.tracer.enabled:
            self.tracer.flow("fleet.request", future.request_id, "finish",
                             ts_us=self.tracer.now_us(),
                             trace_id=future.trace_id)
            self.tracer.instant(
                "fleet.request_done", category="fleet",
                request_id=future.request_id, trace_id=future.trace_id,
                replica=winner.replica.id, hedged=winner.hedged,
                attempts=future.attempts, latency_ms=latency * 1e3)
        self._abandon(pending)
        future._resolve(outputs, latency)

    def _finish_error(self, future: FleetFuture,
                      error: BaseException) -> None:
        if future.done():
            return
        self.metrics.inc("fleet.failed")
        if self.slo is not None:
            self.slo.record(ok=False)
        if self.tracer.enabled:
            self.tracer.instant(
                "fleet.request_failed", category="fleet",
                request_id=future.request_id, trace_id=future.trace_id,
                error=type(error).__name__)
        future._reject(error)

    def _observe_attempt(self, attempt: _Attempt) -> None:
        """Per-replica attempt latency, router-side.

        Measured from submission to settlement *as the router saw
        it*, so a replica whose responses are delayed (the ``slow``
        fault's proxy future, a saturated queue) shows up here even
        when its own ``serve.latency_ms`` clock looks healthy — the
        replica-outlier anomaly detector reads this family first.
        """
        self.metrics.observe(
            f"fleet.attempt_ms.replica.{attempt.replica.id}",
            (time.monotonic() - attempt.started_at) * 1e3)

    def _abandon(self, attempts: list[_Attempt]) -> None:
        """Hand lost/lapped attempts to reaper threads so their
        replicas' outstanding counts settle whenever (if ever) the
        inner futures resolve."""
        for attempt in attempts:
            def reap(a: _Attempt = attempt) -> None:
                settled = True
                try:
                    a.future.result(self.config.attempt_timeout_s)
                except TimeoutError:
                    settled = False  # never resolved: no latency to report
                except Exception:  # noqa: BLE001 — outcome irrelevant
                    pass
                finally:
                    self.pool.note_settle(a.replica)
                    if settled:
                        self._observe_attempt(a)
            threading.Thread(target=reap, name="repro-fleet-reaper",
                             daemon=True).start()

    def _hedge_delay(self, deadline_at) -> float:
        """How long to give the primary before hedging.  With a
        deadline: the slack left after a p95-projected wait, clamped;
        without: the fixed configured delay."""
        config = self.config
        if deadline_at is None:
            return config.hedge_delay_s
        remaining = deadline_at - time.monotonic()
        p95_s = self.metrics.quantiles("fleet.latency_ms").get("p95", 0.0) / 1e3
        return min(max(remaining - p95_s, config.hedge_min_delay_s),
                   config.hedge_delay_s)

    def _maybe_fire_fault(self, replica: Replica) -> None:
        fault = self.fault
        if (fault is None or self._fault_fired
                or replica.id != fault.replica or replica.generation != 0
                or replica.routed + 1 < fault.after):
            return
        self._fault_fired = True
        if self.tracer.enabled:
            self.tracer.instant("fleet.fault", category="fleet",
                                replica=replica.id, kind=fault.kind)
        self.pool.apply_fault(replica, fault)

    # -- introspection (the servable surface) ---------------------------

    def stats(self) -> dict[str, float]:
        """Fleet-wide metrics snapshot (pool registry + liveness)."""
        if self.slo is not None:
            self.slo.export_gauges(self.metrics)
        snapshot = self.metrics.snapshot()
        snapshot["fleet.ready_replicas"] = float(self.pool.ready_count())
        with self._lock:
            snapshot["fleet.in_flight"] = float(self._in_flight)
        return snapshot

    def health_doc(self) -> dict:
        """The fleet ``GET /healthz`` body: ``"ok"`` while at least
        one replica is ready, with per-replica detail."""
        replicas = self.pool.describe()
        ready = sum(1 for r in replicas if r["state"] == "ready")
        if self.healthy():
            status = "ok"
        elif self.draining:
            status = "draining"
        else:
            status = "unavailable"
        return {"status": status, "model": self.graph.name,
                "replicas": replicas, "ready": ready}

    def metrics_text(self) -> str:
        """The fleet ``GET /metrics`` body (replica-labeled families
        included)."""
        from .._version import __version__
        from ..obs.prometheus import prometheus_text

        stats = self.stats()
        return prometheus_text(
            self.metrics, build_info=__version__,
            extra_gauges={key: stats[key] for key in
                          ("fleet.ready_replicas", "fleet.in_flight")})
