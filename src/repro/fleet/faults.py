"""Deterministic fault injection for fleet failover testing.

A :class:`FaultPolicy` arms exactly one fault against one replica:
when the router has routed ``after`` requests to that replica, the
fault fires.  Determinism is the point — the CI failover smoke and
the fleet tests assert *zero* client-visible errors while a replica
crashes mid-run, which is only a meaningful assertion if the crash
happens at a known request count rather than "sometime, maybe".

Kinds:

- ``kill`` — the replica's server closes abruptly (queued requests
  rejected, the in-flight batch finishes).  The router sees
  :class:`~repro.serve.ServerClosed` on the next submit/result and
  retries on a sibling; the pool's health loop ejects the corpse and
  re-admits a fresh server after backoff.
- ``stall`` — the replica black-holes new requests (submits are
  accepted but never complete), modelling a wedged process.  Hedged
  retries rescue the stuck requests; accumulated failures get the
  replica ejected and restarted.
- ``slow`` — every subsequent request to the replica is delayed by
  ``slow_s`` before submission, modelling a degraded-but-alive
  replica.  Latency-sensitive traffic hedges around it.

Faults fire once, on the replica's first *generation* only: after the
pool restarts the replica (re-admission or rolling reload) the fresh
server is healthy — so a test run converges instead of crash-looping.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FaultPolicy", "FAULT_KINDS"]

FAULT_KINDS = ("kill", "stall", "slow")


@dataclass(frozen=True)
class FaultPolicy:
    """Kill/stall/slow ``replica`` once it has been routed ``after``
    requests (1-based: ``after=5`` fires on the 5th routed request,
    before that request is submitted)."""

    replica: int
    kind: str
    after: int
    #: per-request delay once a ``slow`` fault has fired
    slow_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"bad fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if self.replica < 0:
            raise ValueError(f"replica must be >= 0, got {self.replica}")
        if self.after < 1:
            raise ValueError(f"after must be >= 1, got {self.after}")
        if self.slow_s <= 0:
            raise ValueError(f"slow_s must be > 0, got {self.slow_s}")

    @classmethod
    def parse(cls, spec: str) -> "FaultPolicy":
        """Parse the CLI grammar ``REPLICA:KIND:AFTER[:SLOW_MS]``,
        e.g. ``1:kill:5`` or ``0:slow:3:40``."""
        parts = spec.split(":")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"bad fault spec {spec!r}; expected "
                f"REPLICA:KIND:AFTER[:SLOW_MS]")
        try:
            replica, after = int(parts[0]), int(parts[2])
            slow_s = float(parts[3]) / 1e3 if len(parts) == 4 else 0.05
        except ValueError as exc:
            raise ValueError(f"bad fault spec {spec!r}: {exc}") from None
        return cls(replica=replica, kind=parts[1], after=after,
                   slow_s=slow_s)

    def describe(self) -> str:
        extra = (f" by {self.slow_s * 1e3:.0f} ms"
                 if self.kind == "slow" else "")
        return (f"{self.kind} replica {self.replica} after "
                f"{self.after} routed request(s){extra}")
