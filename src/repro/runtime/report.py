"""Report emitters: memory profiles and comparisons as CSV / Markdown.

Turns :class:`~repro.runtime.memory_profile.MemoryProfile` objects into
artifacts people actually attach to issues and papers: per-layer CSV
timelines, Markdown comparison tables, and the op-level breakdown of
where the peak lives.
"""

from __future__ import annotations

import io
from pathlib import Path

from ..ir.graph import Graph
from ..obs.metrics import MetricsRegistry
from .engine import TimingResult
from .memory_profile import MemoryProfile

__all__ = ["timeline_csv", "profile_markdown", "compare_markdown",
           "op_breakdown", "metrics_markdown", "timing_markdown"]

MIB = 1024 * 1024


def timeline_csv(profile: MemoryProfile) -> str:
    """Per-layer timeline as CSV: index, node, op, live bytes, scratch."""
    out = io.StringIO()
    out.write("index,node,op,live_bytes,scratch_bytes\n")
    for e in profile.events:
        out.write(f"{e.index},{e.node_name},{e.op},{e.live_bytes},"
                  f"{e.scratch_bytes}\n")
    return out.getvalue()


def op_breakdown(profile: MemoryProfile) -> dict[str, int]:
    """Peak memory observed while each op kind executes.

    Ranks by :attr:`MemoryEvent.total_bytes` (live + transient scratch)
    so fused kernels — whose channel-block tiles live outside the
    live-tensor pool — are not under-reported relative to plain ops.
    """
    peaks: dict[str, int] = {}
    for e in profile.events:
        peaks[e.op] = max(peaks.get(e.op, 0), e.total_bytes)
    return dict(sorted(peaks.items(), key=lambda kv: -kv[1]))


def profile_markdown(profile: MemoryProfile, title: str = "Memory profile") -> str:
    """One profile as a Markdown section with the peak's composition."""
    lines = [f"## {title}", "",
             f"- peak internal: **{profile.peak_internal_bytes / MIB:.2f} MiB**",
             f"- weights: {profile.weight_bytes / MIB:.2f} MiB",
             f"- fused-kernel scratch: {profile.peak_scratch_bytes / MIB:.2f} MiB",
             f"- allocations: {profile.num_allocations} "
             f"({profile.total_allocated_bytes / MIB:.2f} MiB traffic)", ""]
    if profile.events:
        peak = profile.peak_event()
        lines.append(f"Peak while executing `{peak.node_name}` ({peak.op}); "
                     f"live set:")
        lines.append("")
        lines.append("| tensor | MiB |")
        lines.append("|---|---|")
        for name, nbytes in sorted(profile.peak_live_set.items(),
                                   key=lambda kv: -kv[1]):
            lines.append(f"| `{name}` | {nbytes / MIB:.3f} |")
    return "\n".join(lines) + "\n"


def compare_markdown(profiles: dict[str, MemoryProfile],
                     title: str = "Variant comparison") -> str:
    """Several variants side by side as one Markdown table."""
    lines = [f"## {title}", "",
             "| variant | peak internal MiB | weights MiB | total MiB |",
             "|---|---|---|---|"]
    baseline = None
    for label, p in profiles.items():
        if baseline is None:
            baseline = p.peak_internal_bytes or 1
        reduction = 1.0 - p.peak_internal_bytes / baseline
        extra = f" ({reduction:+.1%})" if p is not list(profiles.values())[0] else ""
        lines.append(f"| {label} | {p.peak_internal_bytes / MIB:.2f}{extra} "
                     f"| {p.weight_bytes / MIB:.2f} "
                     f"| {p.peak_total_bytes / MIB:.2f} |")
    return "\n".join(lines) + "\n"


def metrics_markdown(registry: MetricsRegistry,
                     title: str = "Session metrics") -> str:
    """A :class:`~repro.obs.MetricsRegistry` as one Markdown table.

    Counters and gauges share the table; ``*_bytes`` entries get a MiB
    companion column for readability.
    """
    lines = [f"## {title}", "", "| metric | value | MiB |", "|---|---|---|"]
    for name, value in registry.snapshot().items():
        mib = f"{value / MIB:.3f}" if name.endswith("_bytes") else ""
        shown = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"| `{name}` | {shown} | {mib} |")
    return "\n".join(lines) + "\n"


def timing_markdown(timing: TimingResult,
                    title: str = "Timing") -> str:
    """A :class:`~repro.runtime.engine.TimingResult` as one Markdown table.

    Reports the location statistics plus the tail percentiles
    (p50/p95/p99) that serving SLOs are written against.
    """
    lines = [f"## {title}", "",
             f"- runs: {len(timing.seconds_per_run)}", "",
             "| stat | ms |", "|---|---|"]
    for stat in ("best", "median", "mean", "p50", "p95", "p99"):
        lines.append(f"| {stat} | {getattr(timing, stat) * 1e3:.3f} |")
    return "\n".join(lines) + "\n"


def save_report(text: str, path: str | Path) -> None:
    Path(path).write_text(text)
