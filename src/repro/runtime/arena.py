"""Static arena planning: liveness intervals → concrete buffer offsets.

Deployment runtimes (the paper's related work: Pisarchyk & Lee 2020,
Occamy DAC'23) do not malloc/free tensors dynamically — they
pre-compute one arena and assign every internal tensor an offset such
that tensors with overlapping lifetimes never overlap in memory.  This
module implements that planner on our liveness analysis:

- :func:`plan_arena` — greedy best-fit offset assignment (tensors
  ordered by size, each placed at the lowest offset free across its
  whole live interval), the standard heuristic from the cited work.
- The resulting :class:`ArenaPlan` reports total arena bytes — a
  deployment-accurate version of "peak memory" that is at least the
  max-live-bytes lower bound and usually close to it.

TeMCO's reductions carry through: smaller live sets ⇒ smaller arenas,
which is what an embedded deployment of a TeMCO'd model would save.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from ..ir.graph import Graph
from ..obs import get_tracer
from .allocator import AllocationError
from ..core.liveness import analyze_liveness

logger = logging.getLogger(__name__)

__all__ = ["ArenaSlot", "ArenaPlan", "plan_arena", "execute_in_arena"]


@dataclass(frozen=True)
class ArenaSlot:
    """Placement of one internal tensor inside the arena."""

    value_name: str
    offset: int
    size: int
    begin: int
    end: int

    @property
    def limit(self) -> int:
        return self.offset + self.size

    def lifetime_overlaps(self, other: "ArenaSlot") -> bool:
        return self.begin <= other.end and other.begin <= self.end

    def memory_overlaps(self, other: "ArenaSlot") -> bool:
        return self.offset < other.limit and other.offset < self.limit


@dataclass
class ArenaPlan:
    """Offset assignment for every internal tensor of a schedule."""

    slots: list[ArenaSlot] = field(default_factory=list)
    arena_bytes: int = 0
    #: the max-live-bytes lower bound the plan is measured against
    peak_lower_bound: int = 0

    @property
    def fragmentation(self) -> float:
        """Relative overhead of the plan vs the theoretical lower bound."""
        if self.peak_lower_bound == 0:
            return 0.0
        return self.arena_bytes / self.peak_lower_bound - 1.0

    def validate(self) -> None:
        """No two simultaneously-live tensors may overlap in memory."""
        for i, a in enumerate(self.slots):
            if a.offset < 0 or a.size <= 0:
                raise AllocationError(f"bad slot for {a.value_name!r}")
            for b in self.slots[i + 1:]:
                if a.lifetime_overlaps(b) and a.memory_overlaps(b):
                    raise AllocationError(
                        f"arena overlap: {a.value_name!r} [{a.offset}, {a.limit}) "
                        f"and {b.value_name!r} [{b.offset}, {b.limit}) are live "
                        f"together")

    def offset_of(self, value_name: str) -> int:
        for slot in self.slots:
            if slot.value_name == value_name:
                return slot.offset
        raise KeyError(f"value {value_name!r} not in arena plan")

    def occupancy_series(self) -> list[tuple[int, int]]:
        """``(schedule index, occupied arena bytes)`` over the schedule.

        Occupied bytes at index *i* is the sum of the aligned sizes of
        every slot whose live interval covers *i* — the arena's
        equivalent of the executor's live-bytes timeline, exported as
        the ``arena`` Chrome-trace counter track by the conformance
        auditor.  The series' maximum is :attr:`peak_lower_bound`.
        """
        if not self.slots:
            return []
        first = min(slot.begin for slot in self.slots)
        last = max(slot.end for slot in self.slots)
        deltas: dict[int, int] = {}
        for slot in self.slots:
            deltas[slot.begin] = deltas.get(slot.begin, 0) + slot.size
            deltas[slot.end + 1] = deltas.get(slot.end + 1, 0) - slot.size
        series: list[tuple[int, int]] = []
        occupied = 0
        for index in range(first, last + 1):
            occupied += deltas.get(index, 0)
            series.append((index, occupied))
        return series


def plan_arena(graph: Graph, *, alignment: int = 64) -> ArenaPlan:
    """Greedy best-fit arena planning over the graph's schedule.

    Tensors are placed largest-first; each goes to the lowest aligned
    offset whose range is free for the tensor's entire live interval.
    ``alignment`` rounds sizes/offsets (real deployments align for
    vector loads).
    """
    if alignment < 1:
        raise ValueError(f"alignment must be >= 1, got {alignment}")
    tracer = get_tracer()
    with tracer.span("plan_arena", category="runtime", graph=graph.name):
        plan = _plan_arena(graph, alignment)
    if tracer.enabled:
        tracer.instant("arena_plan", category="runtime", graph=graph.name,
                       slots=len(plan.slots), arena_bytes=plan.arena_bytes,
                       fragmentation=plan.fragmentation)
    logger.debug("arena: %s planned into %d B over %d slots "
                 "(fragmentation %.1f%%)", graph.name, plan.arena_bytes,
                 len(plan.slots), plan.fragmentation * 100)
    return plan


def _plan_arena(graph: Graph, alignment: int) -> ArenaPlan:
    intervals = analyze_liveness(graph)
    candidates = []
    for value, interval in intervals.items():
        if value.nbytes == 0:
            continue
        candidates.append((value, interval))
    # largest first; stable tie-break on definition order then name
    candidates.sort(key=lambda c: (-c[0].nbytes, c[1].begin, c[0].name))

    placed: list[ArenaSlot] = []
    for value, interval in candidates:
        size = _align(value.nbytes, alignment)
        conflicting = sorted(
            (slot for slot in placed
             if slot.begin <= interval.end and interval.begin <= slot.end),
            key=lambda s: s.offset)
        offset = 0
        for slot in conflicting:
            if offset + size <= slot.offset:
                break  # fits in the gap before this slot
            offset = max(offset, _align(slot.limit, alignment))
        placed.append(ArenaSlot(value_name=value.name, offset=offset, size=size,
                                begin=interval.begin, end=interval.end))

    arena_bytes = max((slot.limit for slot in placed), default=0)
    lower = _peak_lower_bound(placed)
    plan = ArenaPlan(slots=placed, arena_bytes=arena_bytes,
                     peak_lower_bound=lower)
    plan.validate()
    return plan


def execute_in_arena(graph: Graph, inputs, plan: ArenaPlan | None = None):
    """Execute ``graph`` with every internal tensor living inside the
    planned arena buffer — an end-to-end proof that the offset plan is
    sound (any overlap of live tensors would corrupt the results).

    Returns ``(outputs dict, plan)``.  Outputs are copied out of the
    arena before returning.
    """
    import numpy as np

    from .. import kernels

    if plan is None:
        plan = plan_arena(graph)
    arena = np.zeros(plan.arena_bytes, dtype=np.uint8)
    slot_by_name = {s.value_name: s for s in plan.slots}

    def view(value):
        slot = slot_by_name[value.name]
        flat = arena[slot.offset:slot.offset + value.nbytes]
        return flat.view(value.dtype.np).reshape(value.shape)

    env = {}
    for v in graph.inputs:
        dst = view(v)
        dst[...] = np.asarray(inputs[v.name], dtype=v.dtype.np)
        env[v.name] = dst
    for node in graph.nodes:
        result = kernels.run_node(node, [env[v.name] for v in node.inputs])
        dst = view(node.output)
        dst[...] = result
        env[node.output.name] = dst
    outputs = {v.name: env[v.name].copy() for v in graph.outputs}
    return outputs, plan


def _align(n: int, alignment: int) -> int:
    return ((n + alignment - 1) // alignment) * alignment


def _peak_lower_bound(slots: list[ArenaSlot]) -> int:
    """Max over time of the sum of live (aligned) tensor sizes."""
    if not slots:
        return 0
    events: dict[int, int] = {}
    for slot in slots:
        events[slot.begin] = events.get(slot.begin, 0) + slot.size
        events[slot.end + 1] = events.get(slot.end + 1, 0) - slot.size
    current = peak = 0
    for t in sorted(events):
        current += events[t]
        peak = max(peak, current)
    return peak
