"""Allocation ledger: a verifiable event log of every alloc/free.

The :class:`AllocationLedger` is the runtime's source of truth for
*attributable* memory: every allocator event is recorded with the
tensor name, byte size, the schedule position (owner node) at which it
fired, a timestamp, and the allocator's live-byte total *after* the
event.  Because each event carries both the delta (``nbytes``) and the
claimed running total (``live_bytes``), the whole log is
self-checking: :meth:`AllocationLedger.verify` replays the deltas from
zero and flags any event whose claimed total disagrees with the
replay — a corrupted or fabricated ledger cannot pass.

The ledger feeds three consumers:

- the enriched :class:`~repro.runtime.memory_profile.MemoryProfile`
  (``profile.ledger``) produced by ``execute(..., record_ledger=True)``,
- the conformance auditor (:mod:`repro.obs.audit`), which cross-checks
  the replayed peak against the static liveness prediction and the
  arena plan,
- per-tensor lifetime reports (:meth:`lifetimes`), optionally annotated
  with arena offsets from an :class:`~repro.runtime.arena.ArenaPlan`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable

__all__ = ["LedgerEvent", "TensorLifetime", "AllocationLedger"]

#: event kinds a ledger records.  ``spill`` is a planned eviction to
#: the host-side store (free-like); ``prefetch`` and ``remat`` are the
#: two ways a memory plan brings a tensor back (alloc-like) — staged
#: from the store or recomputed by a restore chain.
ACTIONS = ("alloc", "free", "scratch", "spill", "prefetch", "remat")

#: actions that add resident bytes / remove resident bytes on replay
ALLOC_LIKE = frozenset(("alloc", "prefetch", "remat"))
FREE_LIKE = frozenset(("free", "spill"))


@dataclass(frozen=True)
class LedgerEvent:
    """One allocator event, self-describing and replayable.

    ``live_bytes`` is the allocator's live total *after* the event
    (for ``scratch`` events: the transient ``live + scratch`` peak
    candidate, since scratch never stays resident).
    """

    seq: int
    action: str  # one of ACTIONS
    value: str
    nbytes: int
    #: schedule index active when the event fired (-1 while binding
    #: graph inputs)
    node_index: int
    #: name of the executing node ("" while binding graph inputs)
    node_name: str
    live_bytes: int
    ts_us: float


@dataclass(frozen=True)
class TensorLifetime:
    """The alloc-to-free span of one tensor, derived from the ledger."""

    value: str
    nbytes: int
    #: node whose execution allocated the tensor ("" for graph inputs)
    owner: str
    alloc_index: int
    #: schedule index of the free; None = still live at end of
    #: inference (graph outputs)
    free_index: int | None
    alloc_ts_us: float
    free_ts_us: float | None
    #: offset inside the arena plan, when one was supplied
    offset: int | None = None

    @property
    def lifetime_indices(self) -> int | None:
        """Schedule-slot lifespan (the paper's DISTANCE), if freed."""
        if self.free_index is None:
            return None
        return self.free_index - self.alloc_index


@dataclass
class AllocationLedger:
    """Ordered, timestamped record of one inference's allocator events."""

    events: list[LedgerEvent] = field(default_factory=list)
    clock: Callable[[], float] = field(default=time.perf_counter, repr=False)

    def __post_init__(self) -> None:
        self._epoch = self.clock()
        self._index = -1
        self._node = ""

    # -- recording (driven by the executor / allocator) -----------------

    def position(self, index: int, node_name: str) -> None:
        """Set the schedule position attributed to subsequent events."""
        self._index = index
        self._node = node_name

    def record(self, action: str, value: str, nbytes: int,
               live_bytes: int) -> None:
        if action not in ACTIONS:
            raise ValueError(f"unknown ledger action {action!r}")
        self.events.append(LedgerEvent(
            seq=len(self.events), action=action, value=value,
            nbytes=int(nbytes), node_index=self._index,
            node_name=self._node, live_bytes=int(live_bytes),
            ts_us=(self.clock() - self._epoch) * 1e6))

    # -- derived views ---------------------------------------------------

    def replay(self) -> list[int]:
        """Recompute the live-byte total after each event from the
        per-event deltas alone (ignoring the claimed ``live_bytes``).
        ``scratch`` entries contribute a transient ``live + scratch``
        sample without changing the running total."""
        live = 0
        series: list[int] = []
        for event in self.events:
            if event.action in ALLOC_LIKE:
                live += event.nbytes
                series.append(live)
            elif event.action in FREE_LIKE:
                live -= event.nbytes
                series.append(live)
            else:  # scratch: transient, does not stay resident
                series.append(live + event.nbytes)
        return series

    @property
    def peak_bytes(self) -> int:
        """Peak of the replayed live-byte trajectory."""
        return max(self.replay(), default=0)

    @property
    def max_live_bytes(self) -> int:
        """Peak of resident (non-scratch) bytes over the replay."""
        live = peak = 0
        for event in self.events:
            if event.action in ALLOC_LIKE:
                live += event.nbytes
                peak = max(peak, live)
            elif event.action in FREE_LIKE:
                live -= event.nbytes
        return peak

    def live_at_end(self) -> dict[str, int]:
        """Tensors never freed (name -> bytes): the graph outputs."""
        live: dict[str, int] = {}
        for event in self.events:
            if event.action in ALLOC_LIKE:
                live[event.value] = event.nbytes
            elif event.action in FREE_LIKE:
                live.pop(event.value, None)
        return live

    def lifetimes(self, plan=None) -> list[TensorLifetime]:
        """Per-tensor alloc/free spans, in allocation order.

        ``plan`` (an :class:`~repro.runtime.arena.ArenaPlan`) annotates
        each lifetime with the tensor's planned arena offset; tensors
        the plan does not cover keep ``offset=None``.
        """
        offsets: dict[str, int] = {}
        if plan is not None:
            offsets = {slot.value_name: slot.offset for slot in plan.slots}
        open_events: dict[str, LedgerEvent] = {}
        out: list[TensorLifetime] = []
        order: dict[str, int] = {}
        for event in self.events:
            if event.action in ALLOC_LIKE:
                # a re-residency (prefetch / remat / re-alloc) opens a
                # fresh lifetime segment for the same tensor name
                open_events[event.value] = event
                order[event.value] = len(out)
                out.append(TensorLifetime(
                    value=event.value, nbytes=event.nbytes,
                    owner=event.node_name, alloc_index=event.node_index,
                    free_index=None, alloc_ts_us=event.ts_us,
                    free_ts_us=None, offset=offsets.get(event.value)))
            elif event.action in FREE_LIKE and event.value in open_events:
                slot = order[event.value]
                out[slot] = replace(out[slot], free_index=event.node_index,
                                    free_ts_us=event.ts_us)
                del open_events[event.value]
        return out

    # -- verification ----------------------------------------------------

    def verify(self, *, expected_peak: int | None = None,
               keep: set[str] = frozenset()) -> list[str]:
        """Replay the ledger and return every inconsistency found.

        An empty list means the ledger is internally consistent (and
        matches ``expected_peak``, when given).  Checks:

        - an ``alloc`` of an already-live tensor (double alloc),
        - a ``free`` of a tensor that is not live (double/stray free),
        - a negative or non-positive byte size,
        - a claimed ``live_bytes`` that disagrees with the replayed
          running total — this is what catches a corrupted entry,
        - a negative replayed total,
        - tensors still live at the end that are not in ``keep``,
        - a replayed peak different from ``expected_peak``.
        """
        problems: list[str] = []
        live: dict[str, int] = {}
        total = peak = 0
        for event in self.events:
            if event.nbytes <= 0:
                problems.append(
                    f"event {event.seq}: non-positive size {event.nbytes} "
                    f"for {event.value!r}")
            if event.action in ALLOC_LIKE:
                if event.value in live:
                    problems.append(
                        f"event {event.seq}: double {event.action} of "
                        f"{event.value!r}")
                live[event.value] = event.nbytes
                total += event.nbytes
                peak = max(peak, total)
                claimed = total
            elif event.action in FREE_LIKE:
                if event.value not in live:
                    problems.append(
                        f"event {event.seq}: {event.action} of non-live "
                        f"{event.value!r}")
                else:
                    if live[event.value] != event.nbytes:
                        problems.append(
                            f"event {event.seq}: {event.value!r} released "
                            f"with {event.nbytes} B but allocated with "
                            f"{live[event.value]} B")
                    del live[event.value]
                total -= event.nbytes
                peak = max(peak, total)
                claimed = total
            elif event.action == "scratch":
                claimed = total + event.nbytes
                peak = max(peak, claimed)
            else:
                problems.append(
                    f"event {event.seq}: unknown action {event.action!r}")
                continue
            if total < 0:
                problems.append(
                    f"event {event.seq}: replayed live bytes negative "
                    f"({total})")
            if claimed != event.live_bytes:
                problems.append(
                    f"event {event.seq}: claims {event.live_bytes} live B "
                    f"but the replay gives {claimed}")
        leaked = set(live) - set(keep)
        if leaked:
            problems.append(f"tensors never freed: {sorted(leaked)}")
        if expected_peak is not None and peak != expected_peak:
            problems.append(
                f"replayed peak {peak} B != expected {expected_peak} B")
        return problems

    def summary(self) -> str:
        mib = 1024 * 1024
        allocs = sum(1 for e in self.events if e.action == "alloc")
        frees = sum(1 for e in self.events if e.action == "free")
        planned = sum(1 for e in self.events
                      if e.action in ("spill", "prefetch", "remat"))
        extra = f", {planned} plan events" if planned else ""
        return (f"{len(self.events)} events ({allocs} allocs, {frees} frees"
                f"{extra}), peak {self.peak_bytes / mib:.2f} MiB")
