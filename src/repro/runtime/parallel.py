"""Data-parallel batch inference across processes.

NumPy releases the GIL inside BLAS but graph interpretation is Python;
for throughput-oriented batch serving the standard HPC recipe is batch
sharding: split the batch axis across worker processes, run the same
graph in each, concatenate results.  The graph ships to workers once
(via :mod:`repro.ir.serialize`) in the pool initializer, so per-call
overhead is just the input shard.

This mirrors an MPI scatter/gather pattern (cf. the mpi4py tutorial in
the domain guides) on a single node using ``multiprocessing``.

**Trace propagation.**  When the ambient tracer is enabled, each
worker runs its shard under a process-local
:class:`~repro.obs.Tracer`, ships the records back with the outputs
(:meth:`~repro.obs.Tracer.export_records`), and the parent merges them
into its own timeline (:meth:`~repro.obs.Tracer.absorb`): wall-clock
aligned, one labeled ``shard-N`` row per worker, every absorbed span
stamped with the run's ``trace_id`` — so one Chrome trace shows the
fan-out across process boundaries end to end.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any

import numpy as np

from ..ir.graph import Graph
from ..ir.serialize import graph_from_dict, graph_to_dict
from ..obs import TaggedTracer, Tracer, get_tracer, new_trace_id
from .executor import execute

__all__ = ["ParallelRunner", "shard_batch", "PARALLEL_TID_BASE"]

#: Chrome-trace rows for absorbed shard timelines start here, clear of
#: the serve workers' 1..N rows
PARALLEL_TID_BASE = 1000

_WORKER_GRAPH: Graph | None = None


def _init_worker(structure: dict[str, Any], weights: dict[str, np.ndarray]) -> None:
    global _WORKER_GRAPH
    _WORKER_GRAPH = graph_from_dict(structure, weights)


def _run_shard(shard: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    assert _WORKER_GRAPH is not None, "worker not initialized"
    return execute(_WORKER_GRAPH, shard).outputs


def _run_shard_traced(payload: tuple[int, str, dict[str, np.ndarray]],
                      ) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Worker half of cross-process trace propagation.

    Runs the shard under a fresh process-local tracer (tagged with the
    propagated trace id and shard index) and returns the outputs plus
    the tracer's picklable record dump for the parent to absorb.
    """
    assert _WORKER_GRAPH is not None, "worker not initialized"
    shard_index, trace_id, shard = payload
    local = Tracer()
    tagged = TaggedTracer(local, trace_id=trace_id, shard=shard_index)
    with tagged.span("parallel.shard", category="parallel",
                     samples=next(iter(shard.values())).shape[0]):
        outputs = execute(_WORKER_GRAPH, shard, tracer=tagged).outputs
    return outputs, local.export_records()


def shard_batch(inputs: dict[str, np.ndarray], num_shards: int) -> list[dict[str, np.ndarray]]:
    """Split every input along axis 0 into up to ``num_shards`` chunks.

    All inputs must share the same batch size.  Returns only non-empty
    shards (fewer than ``num_shards`` if the batch is small).
    """
    batch_sizes = {name: arr.shape[0] for name, arr in inputs.items()}
    if len(set(batch_sizes.values())) != 1:
        raise ValueError(f"inconsistent batch sizes across inputs: {batch_sizes}")
    batch = next(iter(batch_sizes.values()))
    if batch == 0:
        raise ValueError("empty batch")
    bounds = np.linspace(0, batch, num=min(num_shards, batch) + 1, dtype=int)
    shards = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi > lo:
            shards.append({name: arr[lo:hi] for name, arr in inputs.items()})
    return shards


class ParallelRunner:
    """Run a fixed graph on batches, sharded over a process pool.

    The graph must accept arbitrary batch sizes only if it was built
    that way; since our IR has static shapes, the runner re-binds the
    graph per shard size by rebuilding inputs — instead we require the
    caller to pass batches whose size is divisible by ``num_workers``
    times the graph's batch, or simply graphs built at the shard batch
    size.  In practice: build the graph at batch ``B``, run batches of
    ``k·B`` with ``num_workers = k``.
    """

    def __init__(self, graph: Graph, num_workers: int = 2) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        graph.validate()
        self.graph = graph
        self.num_workers = num_workers
        self._pool: mp.pool.Pool | None = None

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ParallelRunner":
        structure, weights = graph_to_dict(self.graph)
        ctx = mp.get_context("spawn" if mp.get_start_method(allow_none=True) == "spawn"
                             else "fork")
        self._pool = ctx.Pool(self.num_workers, initializer=_init_worker,
                              initargs=(structure, weights))
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # -- execution -----------------------------------------------------
    def run(self, inputs: dict[str, np.ndarray], *,
            trace_id: str | None = None) -> dict[str, np.ndarray]:
        """Shard the batch, run shards in parallel, concatenate outputs.

        When the ambient tracer is enabled, the whole run is traced
        under one ``trace_id`` (a fresh one unless the caller
        propagates its own): the parent records a ``parallel.run``
        span, every worker process records its shard locally, and the
        shard timelines are merged back onto labeled ``shard-N`` rows.
        """
        graph_batch = self.graph.inputs[0].shape[0]
        shards = []
        batch = next(iter(inputs.values())).shape[0]
        if batch % graph_batch != 0:
            raise ValueError(
                f"batch {batch} not divisible by graph batch {graph_batch}")
        for lo in range(0, batch, graph_batch):
            shards.append({name: arr[lo:lo + graph_batch] for name, arr in inputs.items()})

        tracer = get_tracer()
        if not tracer.enabled:
            if self._pool is None or len(shards) == 1:
                results = [_run_local(self.graph, shard) for shard in shards]
            else:
                results = self._pool.map(_run_shard, shards)
        else:
            results = self._run_traced(tracer, shards, trace_id
                                       or new_trace_id())
        return {name: np.concatenate([r[name] for r in results], axis=0)
                for name in results[0]}

    def _run_traced(self, tracer, shards, trace_id: str) -> list[dict]:
        """Traced fan-out: propagate ``trace_id`` into every worker and
        absorb their shard timelines."""
        with tracer.span("parallel.run", category="parallel",
                         trace_id=trace_id, shards=len(shards),
                         workers=self.num_workers):
            if self._pool is None or len(shards) == 1:
                results = []
                for index, shard in enumerate(shards):
                    local = TaggedTracer(tracer, trace_id=trace_id,
                                         shard=index)
                    results.append(execute(self.graph, shard,
                                           tracer=local).outputs)
                return results
            pairs = self._pool.map(
                _run_shard_traced,
                [(index, trace_id, shard)
                 for index, shard in enumerate(shards)])
            results = []
            for index, (outputs, records) in enumerate(pairs):
                tid = PARALLEL_TID_BASE + index
                tracer.name_thread(tid, f"shard-{index}")
                tracer.absorb(records, tid=tid)
                results.append(outputs)
            return results


def _run_local(graph: Graph, shard: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    return execute(graph, shard).outputs
