"""Execution runtime: allocator, executor, sessions, parallel engine."""

from .allocator import AllocationError, TensorAllocator
from .arena import ArenaPlan, ArenaSlot, execute_in_arena, plan_arena
from .engine import InferenceSession, TimingResult
from .executor import ExecutionResult, NodeTiming, execute
from .ledger import AllocationLedger, LedgerEvent, TensorLifetime
from .memory_profile import MemoryEvent, MemoryProfile, PlanStats
from .parallel import ParallelRunner, shard_batch
from .planned import PlanEnforcer
from .report import (compare_markdown, metrics_markdown, op_breakdown,
                     profile_markdown, save_report, timeline_csv,
                     timing_markdown)

__all__ = [
    "AllocationError",
    "TensorAllocator",
    "ArenaPlan",
    "ArenaSlot",
    "plan_arena",
    "execute_in_arena",
    "InferenceSession",
    "TimingResult",
    "ExecutionResult",
    "NodeTiming",
    "execute",
    "AllocationLedger",
    "LedgerEvent",
    "TensorLifetime",
    "MemoryEvent",
    "MemoryProfile",
    "PlanStats",
    "PlanEnforcer",
    "ParallelRunner",
    "shard_batch",
    "timeline_csv",
    "metrics_markdown",
    "profile_markdown",
    "compare_markdown",
    "op_breakdown",
    "save_report",
    "timing_markdown",
]
