"""Simulated dynamic tensor allocator.

Reproduces the framework memory policy the paper's analysis assumes
(§2.2): *"the frameworks allocate only the internal tensors required by
the currently running layer and free the tensors that will not be used
in future inference"*.  The executor drives it with reference counts
derived from the schedule; the allocator's job is exact byte
accounting — current footprint, peak footprint, and the live-set
snapshot at the peak (used by the Figure-4 breakdown of how much of the
peak is skip connections).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..ir.value import Value

__all__ = ["TensorAllocator", "AllocationError"]


class AllocationError(RuntimeError):
    """Raised on double-alloc / double-free — invariant violations."""


@dataclass
class TensorAllocator:
    """Byte-accurate tracker of live internal tensors."""

    current_bytes: int = 0
    peak_bytes: int = 0
    #: live-set snapshot (value name -> bytes) captured when peak_bytes last grew
    peak_live_set: dict[str, int] = field(default_factory=dict)
    #: currently live values
    _live: dict[str, int] = field(default_factory=dict)
    #: cumulative bytes ever allocated (allocation traffic)
    total_allocated_bytes: int = 0
    num_allocations: int = 0
    #: optional enabled tracer (set by the executor); when present, every
    #: alloc/free emits an instant event on the ``allocator`` category
    tracer: Any = field(default=None, repr=False, compare=False)
    #: optional :class:`~repro.runtime.ledger.AllocationLedger` (set by
    #: the executor); when present, every event is appended to it
    ledger: Any = field(default=None, repr=False, compare=False)

    def alloc(self, value: Value) -> None:
        if value.name in self._live:
            raise AllocationError(f"value {value.name!r} allocated twice")
        nbytes = value.nbytes
        self._live[value.name] = nbytes
        self.current_bytes += nbytes
        self.total_allocated_bytes += nbytes
        self.num_allocations += 1
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes
            self.peak_live_set = dict(self._live)
        if self.ledger is not None:
            self.ledger.record("alloc", value.name, nbytes, self.current_bytes)
        if self.tracer is not None:
            self.tracer.instant("alloc", category="allocator",
                                value=value.name, bytes=nbytes,
                                live_bytes=self.current_bytes)

    def free(self, value: Value) -> None:
        try:
            nbytes = self._live.pop(value.name)
        except KeyError as exc:
            raise AllocationError(f"value {value.name!r} freed but not live") from exc
        self.current_bytes -= nbytes
        if self.current_bytes < 0:  # pragma: no cover - defensive
            raise AllocationError("negative live bytes: accounting bug")
        if self.ledger is not None:
            self.ledger.record("free", value.name, nbytes, self.current_bytes)
        if self.tracer is not None:
            self.tracer.instant("free", category="allocator",
                                value=value.name, bytes=nbytes,
                                live_bytes=self.current_bytes)

    def spill(self, value: Value) -> None:
        """Release ``value``'s bytes because it moved to the host-side
        spill store — a free tagged ``spill`` in the ledger so the
        auditor can tell planned evictions from lifetime-end frees."""
        try:
            nbytes = self._live.pop(value.name)
        except KeyError as exc:
            raise AllocationError(
                f"value {value.name!r} spilled but not live") from exc
        self.current_bytes -= nbytes
        if self.ledger is not None:
            self.ledger.record("spill", value.name, nbytes, self.current_bytes)
        if self.tracer is not None:
            self.tracer.instant("spill", category="allocator",
                                value=value.name, bytes=nbytes,
                                live_bytes=self.current_bytes)

    def restore(self, value: Value, action: str) -> None:
        """Re-charge a previously released tensor; ``action`` is the
        ledger tag — ``"prefetch"`` (staged back from the spill store)
        or ``"remat"`` (recomputed by a plan's restore chain)."""
        if action not in ("prefetch", "remat"):
            raise ValueError(f"unknown restore action {action!r}")
        if value.name in self._live:
            raise AllocationError(f"value {value.name!r} restored while live")
        nbytes = value.nbytes
        self._live[value.name] = nbytes
        self.current_bytes += nbytes
        self.total_allocated_bytes += nbytes
        self.num_allocations += 1
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes
            self.peak_live_set = dict(self._live)
        if self.ledger is not None:
            self.ledger.record(action, value.name, nbytes, self.current_bytes)
        if self.tracer is not None:
            self.tracer.instant(action, category="allocator",
                                value=value.name, bytes=nbytes,
                                live_bytes=self.current_bytes)

    def charge_scratch(self, nbytes: int) -> None:
        """Transient workspace charge: bumps the peak if the current live
        set plus this scratch exceeds it, without staying resident."""
        if nbytes <= 0:
            return
        candidate = self.current_bytes + int(nbytes)
        if candidate > self.peak_bytes:
            self.peak_bytes = candidate
            self.peak_live_set = dict(self._live)
            self.peak_live_set["<scratch>"] = int(nbytes)
        if self.ledger is not None:
            self.ledger.record("scratch", "<scratch>", int(nbytes), candidate)
        if self.tracer is not None:
            self.tracer.instant("scratch", category="allocator",
                                bytes=int(nbytes), live_bytes=candidate)

    @property
    def live_values(self) -> dict[str, int]:
        """Name -> bytes of currently live tensors (copy)."""
        return dict(self._live)

    def assert_empty(self, keep: set[str] = frozenset()) -> None:
        """Check everything except ``keep`` has been freed (leak check)."""
        leaked = set(self._live) - set(keep)
        if leaked:
            raise AllocationError(f"leaked internal tensors: {sorted(leaked)}")
