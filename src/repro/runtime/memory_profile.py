"""Memory profile data structures produced by the executor.

A :class:`MemoryProfile` is the measured counterpart of the paper's
Figures 4 and 10: a per-layer timeline of live internal-tensor bytes
plus the weight total and the composition of the live set at the peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ledger import AllocationLedger

__all__ = ["MemoryEvent", "MemoryProfile", "PlanStats"]


@dataclass
class PlanStats:
    """What a memory plan actually did during one enforced inference.

    Filled in by :class:`~repro.runtime.planned.PlanEnforcer`; the
    serving layer folds these into its metrics registry so the numbers
    surface as ``repro_plan_*`` series on ``/metrics``.
    """

    budget_bytes: int | None = None
    planned_peak_bytes: int = 0
    spills: int = 0
    spilled_bytes: int = 0
    prefetches: int = 0
    prefetched_bytes: int = 0
    remats: int = 0
    remat_flops: int = 0
    #: spill writes that failed and fell back to keep-resident
    spill_failures: int = 0
    #: async prefetches that needed the synchronous retry
    fetch_retries: int = 0

    def to_dict(self) -> dict:
        return {
            "budget_bytes": self.budget_bytes,
            "planned_peak_bytes": self.planned_peak_bytes,
            "spills": self.spills,
            "spilled_bytes": self.spilled_bytes,
            "prefetches": self.prefetches,
            "prefetched_bytes": self.prefetched_bytes,
            "remats": self.remats,
            "remat_flops": self.remat_flops,
            "spill_failures": self.spill_failures,
            "fetch_retries": self.fetch_retries,
        }


@dataclass(frozen=True)
class MemoryEvent:
    """Live-byte snapshot taken while one node executes.

    ``live_bytes`` includes the node's inputs (not yet freed), its
    freshly allocated output, and any still-live long-range tensors —
    i.e. the max-of-sums quantity in the paper's Eq. 3/4.
    """

    index: int
    node_name: str
    op: str
    live_bytes: int
    scratch_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.live_bytes + self.scratch_bytes


@dataclass
class MemoryProfile:
    """Full memory account of one inference."""

    events: list[MemoryEvent] = field(default_factory=list)
    peak_internal_bytes: int = 0
    weight_bytes: int = 0
    #: live set (value name -> bytes) captured at the peak event
    peak_live_set: dict[str, int] = field(default_factory=dict)
    #: cumulative allocation traffic
    total_allocated_bytes: int = 0
    num_allocations: int = 0
    #: peak transient scratch of fused kernels (reported separately)
    peak_scratch_bytes: int = 0
    #: full alloc/free event log, recorded when the executor ran with
    #: ``record_ledger=True`` (see :mod:`repro.runtime.ledger`)
    ledger: AllocationLedger | None = None
    #: spill/prefetch/remat accounting of the enforced memory plan, when
    #: the executor ran with ``plan=`` (see :mod:`repro.runtime.planned`)
    plan_stats: PlanStats | None = None

    @property
    def peak_total_bytes(self) -> int:
        """Weights + internal peak — the bar height in Figure 10."""
        return self.weight_bytes + self.peak_internal_bytes

    def timeline(self) -> list[tuple[int, int]]:
        """``(layer index, live internal bytes)`` series (Figure 4 x/y)."""
        return [(e.index, e.live_bytes) for e in self.events]

    def peak_event(self) -> MemoryEvent:
        if not self.events:
            raise ValueError("profile has no events")
        return max(self.events, key=lambda e: e.live_bytes)

    def live_bytes_by_value(self, names: set[str]) -> int:
        """Bytes of the peak live set attributable to ``names``."""
        return sum(b for n, b in self.peak_live_set.items() if n in names)

    def summary(self) -> str:
        mib = 1024 * 1024
        return (f"peak internal {self.peak_internal_bytes / mib:.2f} MiB, "
                f"weights {self.weight_bytes / mib:.2f} MiB, "
                f"scratch {self.peak_scratch_bytes / mib:.2f} MiB, "
                f"{self.num_allocations} allocations / "
                f"{self.total_allocated_bytes / mib:.2f} MiB traffic")
