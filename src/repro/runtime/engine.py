"""High-level inference session.

:class:`InferenceSession` is the user-facing entry point: it owns a
validated graph, runs single inferences, repeated timed inferences
(Figure 11's end-to-end timing protocol: warmup + median of repeats),
and exposes the memory profile of the last run.
"""

from __future__ import annotations

import logging
import statistics
import time
from dataclasses import dataclass

import numpy as np

from ..ir.graph import Graph
from ..obs import get_tracer
from .executor import ExecutionResult, execute
from .memory_profile import MemoryProfile

logger = logging.getLogger(__name__)

__all__ = ["InferenceSession", "TimingResult"]


@dataclass(frozen=True)
class TimingResult:
    """Repeated-inference timing summary."""

    seconds_per_run: list[float]

    @property
    def median(self) -> float:
        return statistics.median(self.seconds_per_run)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.seconds_per_run)

    @property
    def best(self) -> float:
        return min(self.seconds_per_run)

    def percentile(self, q: float) -> float:
        """Linearly interpolated percentile, ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.seconds_per_run)
        pos = q / 100.0 * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)


class InferenceSession:
    """Run a (possibly TeMCO-optimized) model graph.

    Parameters
    ----------
    graph:
        A validated IR graph.  The session validates it again on
        construction so user-assembled graphs fail fast.
    count_fused_scratch:
        Charge fused-kernel tiles to the internal-tensor pool (see
        :func:`repro.runtime.executor.execute`).
    tracer:
        An :class:`repro.obs.Tracer` that every inference of this
        session records into; defaults to the ambient tracer (a no-op
        unless one is installed with :func:`repro.obs.use_tracer`).
    memory_plan:
        A :class:`~repro.plan.MemoryPlan` enforced on every inference
        of this session: spills, prefetches and remats keep the
        measured peak at the plan's predicted peak (see
        :mod:`repro.runtime.planned`).
    spill_store:
        Backing :class:`~repro.plan.SpillStore` for the plan's spill
        actions; per-run in-memory stores are created when omitted.
    """

    def __init__(self, graph: Graph, *, count_fused_scratch: bool = False,
                 tracer=None, memory_plan=None, spill_store=None) -> None:
        graph.validate()
        self.graph = graph
        self.count_fused_scratch = count_fused_scratch
        self.tracer = tracer
        self.memory_plan = memory_plan
        self.spill_store = spill_store
        self.last_result: ExecutionResult | None = None

    @property
    def input_names(self) -> list[str]:
        return [v.name for v in self.graph.inputs]

    def run(self, inputs: dict[str, np.ndarray] | np.ndarray, *,
            record_timings: bool = False, record_ledger: bool = False,
            tracer=None) -> ExecutionResult:
        """Run one inference.  A bare array is bound to the sole input.

        ``tracer`` overrides the session tracer for this call only —
        the serving layer passes a per-batch
        :class:`~repro.obs.TaggedTracer` so executor node spans carry
        the trace ids of the requests coalesced into the batch.
        """
        if isinstance(inputs, np.ndarray):
            if len(self.graph.inputs) != 1:
                raise ValueError(
                    f"graph has {len(self.graph.inputs)} inputs; pass a dict")
            inputs = {self.graph.inputs[0].name: inputs}
        if tracer is None:
            tracer = self.tracer if self.tracer is not None else get_tracer()
        with tracer.span("inference", category="runtime",
                         graph=self.graph.name):
            result = execute(self.graph, inputs, record_timings=record_timings,
                             record_ledger=record_ledger,
                             count_fused_scratch=self.count_fused_scratch,
                             plan=self.memory_plan,
                             spill_store=self.spill_store,
                             tracer=tracer)
        self.last_result = result
        logger.debug("inference on %s: %s", self.graph.name,
                     result.memory.summary())
        return result

    def profile_memory(self, inputs: dict[str, np.ndarray] | np.ndarray) -> MemoryProfile:
        """Run once and return the memory profile."""
        return self.run(inputs).memory

    def time_inference(self, inputs: dict[str, np.ndarray] | np.ndarray,
                       *, warmup: int = 1, repeats: int = 3) -> TimingResult:
        """End-to-end wall-clock timing with warmup (Figure 11 protocol)."""
        for _ in range(warmup):
            self.run(inputs)
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            self.run(inputs)
            times.append(time.perf_counter() - start)
        return TimingResult(times)
