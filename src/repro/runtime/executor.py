"""Graph executor with framework-faithful memory accounting.

Executes the schedule (``graph.nodes`` order) with reference-counted
frees: a value's array is dropped — and its bytes returned to the
allocator — immediately after its last consumer runs, exactly the
policy the paper's Eq. 3/4 peak analysis models.  Graph inputs are
live from the start; graph outputs stay live to the end.

The executor measures, per node, the live internal bytes *during* that
node's execution (inputs + output + long-lived tensors), producing the
:class:`~repro.runtime.memory_profile.MemoryProfile` timeline that the
Figure-4/10 benchmarks report, plus optional wall-clock timings for
Figure 11.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import kernels
from ..ir.graph import Graph
from ..ir.ops import node_flops
from ..ir.value import Value
from ..obs import get_tracer
from .allocator import TensorAllocator
from .ledger import AllocationLedger
from .memory_profile import MemoryEvent, MemoryProfile

__all__ = ["execute", "ExecutionResult", "NodeTiming"]


@dataclass(frozen=True)
class NodeTiming:
    index: int
    node_name: str
    op: str
    seconds: float


@dataclass
class ExecutionResult:
    """Outputs plus the memory/time measurements of one inference."""

    outputs: dict[str, np.ndarray]
    memory: MemoryProfile
    timings: list[NodeTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.timings)

    def output(self) -> np.ndarray:
        """The sole output (raises if the graph has several)."""
        if len(self.outputs) != 1:
            raise ValueError(f"graph has {len(self.outputs)} outputs: {sorted(self.outputs)}")
        return next(iter(self.outputs.values()))


#: element-wise ops whose output may reuse a dying input's buffer
_INPLACE_OPS = frozenset(("relu", "silu", "sigmoid", "tanh",
                          "leaky_relu", "elu", "hardswish", "gelu",
                          "identity", "dropout"))


def execute(graph: Graph, inputs: dict[str, np.ndarray], *,
            record_timings: bool = False,
            record_ledger: bool = False,
            count_fused_scratch: bool = False,
            inplace_activations: bool = False,
            check_leaks: bool = True,
            check_finite: bool = False,
            plan=None,
            spill_store=None,
            tracer=None) -> ExecutionResult:
    """Run ``graph`` on ``inputs`` (name -> array).

    Parameters
    ----------
    record_timings:
        Collect per-node wall-clock times (Figure 11).
    record_ledger:
        Record every allocator event (tensor, bytes, owning node,
        timestamp) into an
        :class:`~repro.runtime.ledger.AllocationLedger`, attached to
        the result as ``result.memory.ledger``.  The ledger is the
        input of the conformance auditor (:mod:`repro.obs.audit`).
    count_fused_scratch:
        If True, the fused kernels' channel-block tiles are charged to
        the allocator as transient scratch (the honest-accounting
        ablation); by default they are tracked separately, matching the
        paper's placement of tiles in GPU shared memory.
    inplace_activations:
        Model ``inplace=True`` activations: when an element-wise op is
        its input's last consumer, the input's bytes are released
        *before* the output is charged, so the pair never coexists.
        The default False matches the paper's Eq. 3/4 accounting.
    check_leaks:
        Assert that only graph outputs remain live at the end.
    check_finite:
        Debugging aid: raise ``FloatingPointError`` naming the first
        node that produces a non-finite value (NaN/inf), instead of
        letting it propagate silently to the output.
    plan:
        A :class:`~repro.plan.MemoryPlan` to enforce: spill, prefetch
        and remat actions run at node boundaries via
        :class:`~repro.runtime.planned.PlanEnforcer`, keeping the
        measured peak at the plan's predicted peak while outputs stay
        bitwise-identical.  Incompatible with ``inplace_activations``
        (the plan was simulated against the default accounting).
    spill_store:
        The :class:`~repro.plan.SpillStore` backing the plan's spill
        actions; a fresh in-memory store is created when omitted.
    tracer:
        An :class:`repro.obs.Tracer` to record per-node spans, the
        ``memory`` counter track, and allocator alloc/free events into.
        Defaults to the ambient tracer (:func:`repro.obs.get_tracer`),
        which is a no-op unless one was installed — the hot path guards
        on ``tracer.enabled`` so disabled tracing adds no allocations.
    """
    if tracer is None:
        tracer = get_tracer()
    tracing = tracer.enabled
    env: dict[str, np.ndarray] = {}
    allocator = TensorAllocator()
    if tracing:
        allocator.tracer = tracer
    ledger: AllocationLedger | None = None
    if record_ledger:
        ledger = allocator.ledger = AllocationLedger()
        ledger.position(-1, "")  # graph-input binding phase
    enforcer = None
    if plan is not None:
        if inplace_activations:
            raise ValueError(
                "a memory plan cannot be enforced with inplace_activations: "
                "the plan's peak was simulated against the default accounting")
        if plan.num_nodes != len(graph.nodes):
            raise ValueError(
                f"plan for {plan.graph_name!r} covers {plan.num_nodes} nodes "
                f"but graph {graph.name!r} has {len(graph.nodes)}")
        from .planned import PlanEnforcer
        enforcer = PlanEnforcer(plan, allocator, env, spill_store, tracer)
    profile = MemoryProfile(weight_bytes=graph.weight_bytes(), ledger=ledger)
    timings: list[NodeTiming] = []

    # reference counts: number of consuming nodes (+1 for graph outputs so
    # they are never freed mid-inference)
    refcount: dict[str, int] = {}
    for node in graph.nodes:
        for v in node.inputs:
            refcount[v.name] = refcount.get(v.name, 0) + 1
    for v in graph.outputs:
        refcount[v.name] = refcount.get(v.name, 0) + 1

    value_by_name: dict[str, Value] = {v.name: v for v in graph.values()}

    # bind and account graph inputs
    for v in graph.inputs:
        try:
            arr = inputs[v.name]
        except KeyError as exc:
            raise KeyError(f"missing input {v.name!r}; graph inputs: "
                           f"{[i.name for i in graph.inputs]}") from exc
        if tuple(arr.shape) != v.shape:
            raise ValueError(f"input {v.name!r} has shape {arr.shape}, expected {v.shape}")
        env[v.name] = np.asarray(arr, dtype=v.dtype.np)
        allocator.alloc(v)
        if refcount.get(v.name, 0) == 0:
            # unused input: free immediately (still counted as allocated once)
            allocator.free(v)
            del env[v.name]
    if enforcer is not None:
        enforcer.after_inputs()

    output_names = {v.name for v in graph.outputs}
    for index, node in enumerate(graph.nodes):
        if ledger is not None:
            ledger.position(index, node.name)
        if enforcer is not None:
            enforcer.before_node(index)
        in_arrays = [env[v.name] for v in node.inputs]
        start = time.perf_counter() if record_timings else 0.0
        span_start = tracer.now_us() if tracing else 0.0
        out_array = kernels.run_node(node, in_arrays)
        # the span is recorded after the scratch block below so it can
        # carry the fused-tile bytes; the end timestamp is taken here,
        # so the recorded duration covers the kernel alone
        span_end = tracer.now_us() if tracing else 0.0
        if check_finite and not np.isfinite(out_array).all():
            bad = int((~np.isfinite(out_array)).sum())
            raise FloatingPointError(
                f"node {node.name!r} ({node.op}) produced {bad} non-finite "
                f"value(s) at schedule index {index}")
        if record_timings:
            timings.append(NodeTiming(index, node.name, node.op,
                                      time.perf_counter() - start))

        # in-place elementwise: release the dying input before charging
        # the output, so the pair never coexists in the accounting
        if inplace_activations and node.op in _INPLACE_OPS:
            v = node.inputs[0]
            if (refcount.get(v.name, 0) == 1 and v.name in env
                    and v.name not in output_names):
                allocator.free(value_by_name[v.name])
                del env[v.name]
                refcount[v.name] = 0
                if tracing:
                    tracer.instant("reuse", category="allocator",
                                   value=node.output.name, source=v.name,
                                   bytes=node.output.nbytes)

        allocator.alloc(node.output)
        env[node.output.name] = out_array

        scratch = 0
        if node.op in ("fused_block", "fused_restore"):
            scratch = kernels.fused_scratch_bytes(
                node.input.shape, node.input.dtype.itemsize,
                block_size=int(node.attrs.get("block_size", kernels.DEFAULT_BLOCK_SIZE)),
                c_prime=node.params["w1"].shape[0],
                spatial_tile=int(node.attrs.get("spatial_tile", 0) or 0))
            profile.peak_scratch_bytes = max(profile.peak_scratch_bytes, scratch)
            if count_fused_scratch:
                allocator.charge_scratch(scratch)

        profile.events.append(MemoryEvent(
            index=index, node_name=node.name, op=node.op,
            live_bytes=allocator.current_bytes, scratch_bytes=scratch))
        if tracing:
            # bytes = data the kernel touched (inputs + output +
            # weights); with the analytic FLOP count this gives the
            # hot-path profiler (repro.obs.profile) the arithmetic
            # intensity of every executed node
            moved = (sum(int(a.nbytes) for a in in_arrays)
                     + int(out_array.nbytes) + node.param_bytes())
            tracer.complete(node.name, span_start, span_end - span_start,
                            category=node.op, index=index, op=node.op,
                            bytes=moved, flops=node_flops(node),
                            scratch=scratch)
            tracer.counter("memory", live_bytes=allocator.current_bytes,
                           scratch_bytes=scratch)
            if enforcer is not None:
                tracer.counter("plan",
                               planned_bytes=plan.planned_live[index],
                               live_bytes=allocator.current_bytes)

        # free inputs whose last use just ran
        for v in node.inputs:
            refcount[v.name] -= 1
            if refcount[v.name] == 0 and v.name in env:
                allocator.free(value_by_name[v.name])
                del env[v.name]
        # a dead-end output (no consumers, not a graph output) is freed
        # as soon as its producing layer finishes
        if refcount.get(node.output.name, 0) == 0:
            allocator.free(node.output)
            del env[node.output.name]
        if enforcer is not None:
            enforcer.after_node(index)

    if enforcer is not None:
        enforcer.finish()
    outputs = {v.name: env[v.name] for v in graph.outputs}
    if check_leaks:
        allocator.assert_empty(keep={v.name for v in graph.outputs})

    profile.peak_internal_bytes = allocator.peak_bytes
    profile.peak_live_set = allocator.peak_live_set
    profile.total_allocated_bytes = allocator.total_allocated_bytes
    profile.num_allocations = allocator.num_allocations
    if enforcer is not None:
        profile.plan_stats = enforcer.stats
        if tracing:
            tracer.metrics.inc("plan.spilled_bytes",
                               enforcer.stats.spilled_bytes)
            tracer.metrics.inc("plan.remat", enforcer.stats.remats)
            tracer.metrics.gauge("plan.planned_peak_bytes",
                                 plan.planned_peak_bytes)
    if tracing:
        tracer.metrics.inc("executor.runs")
        tracer.metrics.inc("executor.nodes_executed", len(graph.nodes))
        tracer.metrics.inc("executor.allocation_traffic_bytes",
                           allocator.total_allocated_bytes)
        tracer.metrics.gauge("executor.peak_internal_bytes",
                             allocator.peak_bytes)
        tracer.metrics.gauge("executor.peak_scratch_bytes",
                             profile.peak_scratch_bytes)
    return ExecutionResult(outputs=outputs, memory=profile, timings=timings)
