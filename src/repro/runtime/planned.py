"""Runtime enforcement of a :class:`~repro.plan.MemoryPlan`.

The executor stays the single execution loop; this module supplies the
:class:`PlanEnforcer` it drives at node boundaries:

- ``after_inputs()``  — spills scheduled right after input binding;
- ``before_node(i)``  — prefetch charges issued for node ``i``, arrays
  bound for consumers at ``i``, remat chains replayed for ``i``;
- ``after_node(i)``   — spill writes and remat drops scheduled after
  node ``i``'s frees;
- ``finish()``        — restore graph outputs spilled past their last
  use, then stop the prefetch worker.

Every byte movement goes through the
:class:`~repro.runtime.allocator.TensorAllocator` using the tagged
``spill`` / ``prefetch`` / ``remat`` ledger actions, so an enforced
run's ledger replays to exactly the plan's predicted peak — the
invariant `repro memcheck --budget` checks.

Failure semantics: a failed spill write falls back to keep-resident
(the request stays correct, the budget becomes best-effort); a failed
async prefetch is retried once synchronously and only then surfaces a
:class:`~repro.plan.store.SpillStoreError`.
"""

from __future__ import annotations

import logging

import numpy as np

from .. import kernels
from ..plan.planner import MemoryPlan, RematAction, SpillAction
from ..plan.store import PrefetchWorker, SpillStore, SpillStoreError
from .allocator import TensorAllocator
from .memory_profile import PlanStats

logger = logging.getLogger(__name__)

__all__ = ["PlanEnforcer"]


class PlanEnforcer:
    """Applies one plan's actions to one running inference."""

    def __init__(self, plan: MemoryPlan, allocator: TensorAllocator,
                 env: dict[str, np.ndarray], store: SpillStore | None,
                 tracer) -> None:
        self.plan = plan
        self.allocator = allocator
        self.env = env
        self.tracer = tracer
        self.stats = PlanStats(budget_bytes=plan.budget_bytes,
                               planned_peak_bytes=plan.planned_peak_bytes)
        self._spill_at: dict[int, list[SpillAction]] = {}
        self._issue_at: dict[int, list[SpillAction]] = {}
        self._bind_at: dict[int, list[SpillAction]] = {}
        self._drop_at: dict[int, list[RematAction]] = {}
        self._remat_at: dict[int, list[RematAction]] = {}
        for a in plan.actions:
            if isinstance(a, SpillAction):
                self._spill_at.setdefault(a.spill_after, []).append(a)
                self._issue_at.setdefault(a.prefetch_issue, []).append(a)
                self._bind_at.setdefault(a.next_use, []).append(a)
            elif isinstance(a, RematAction):
                self._drop_at.setdefault(a.drop_after, []).append(a)
                self._remat_at.setdefault(a.remat_before, []).append(a)
        needs_store = bool(self._spill_at)
        self.store = store if store is not None else (
            SpillStore() if needs_store else None)
        self._worker = PrefetchWorker(self.store) if needs_store else None
        #: values whose spill write failed — kept resident instead
        self._failed: set[str] = set()

    # -- boundary hooks (called by the executor) ------------------------

    def after_inputs(self) -> None:
        self.after_node(-1)

    def before_node(self, index: int) -> None:
        for a in self._issue_at.get(index, ()):
            self._issue(a)
        for a in self._bind_at.get(index, ()):
            self._bind(a)
        for a in self._remat_at.get(index, ()):
            self._remat(a)

    def after_node(self, index: int) -> None:
        for a in self._spill_at.get(index, ()):
            self._spill(a)
        for a in self._drop_at.get(index, ()):
            self._drop(a)

    def finish(self) -> None:
        """Bind spilled graph outputs (sentinel ``next_use ==
        num_nodes``), then release the worker."""
        try:
            for a in self._bind_at.get(self.plan.num_nodes, ()):
                self._bind(a)
        finally:
            self.close()

    def close(self) -> None:
        if self._worker is not None:
            self._worker.close()
        if self.store is not None:
            self.store.clear()

    # -- the actions -----------------------------------------------------

    def _spill(self, a: SpillAction) -> None:
        name = a.value.name
        array = self.env[name]
        start = self.tracer.now_us()
        try:
            self.store.put(name, array)
        except SpillStoreError as exc:
            # graceful fallback: keep the tensor resident; the matching
            # prefetch is skipped and the request stays correct
            self._failed.add(name)
            self.stats.spill_failures += 1
            logger.warning("spill of %s failed, keeping resident: %s",
                           name, exc)
            self.tracer.instant("plan.spill_failed", category="plan",
                                value=name, bytes=a.nbytes, error=str(exc))
            self.tracer.metrics.inc("plan.spill_failures")
            return
        self.tracer.complete("plan.spill", start,
                             self.tracer.now_us() - start, category="plan",
                             value=name, bytes=a.nbytes,
                             spill_after=a.spill_after, next_use=a.next_use)
        self.allocator.spill(a.value)
        del self.env[name]
        self.stats.spills += 1
        self.stats.spilled_bytes += a.nbytes

    def _issue(self, a: SpillAction) -> None:
        name = a.value.name
        if name in self._failed:
            return  # never left residence
        # the bytes are charged when the transfer starts, not when it
        # lands — the conservative double-buffer accounting the planner
        # simulates
        self.allocator.restore(a.value, "prefetch")
        self._worker.issue(name)

    def _bind(self, a: SpillAction) -> None:
        name = a.value.name
        if name in self._failed:
            return
        start = self.tracer.now_us()
        try:
            array = self._worker.wait(name)
        except SpillStoreError:
            # one synchronous retry covers transient I/O; a second
            # failure means the data is gone and must surface
            self.stats.fetch_retries += 1
            self.tracer.metrics.inc("plan.fetch_retries")
            try:
                array = self.store.fetch(name)
            except SpillStoreError:
                self.close()
                raise
        # the span duration is the prefetch *stall*: zero when the
        # transfer fully overlapped the preceding node's compute
        self.tracer.complete("plan.prefetch", start,
                             self.tracer.now_us() - start, category="plan",
                             value=name, bytes=a.nbytes,
                             issued_at=a.prefetch_issue)
        self.env[name] = array
        self.store.discard(name)
        self.stats.prefetches += 1
        self.stats.prefetched_bytes += a.nbytes

    def _remat(self, a: RematAction) -> None:
        start = self.tracer.now_us()
        target = a.value.name
        for cnode in a.chain:
            in_arrays = [self.env[v.name] for v in cnode.inputs]
            out_array = kernels.run_node(cnode, in_arrays)
            if cnode.output.name == target:
                self.allocator.restore(a.value, "remat")
            else:
                self.allocator.alloc(cnode.output)
            self.env[cnode.output.name] = out_array
        for cnode in a.chain:
            if cnode.output.name != target:
                self.allocator.free(cnode.output)
                del self.env[cnode.output.name]
        self.tracer.complete("plan.remat", start,
                             self.tracer.now_us() - start, category="plan",
                             value=target, bytes=a.nbytes,
                             chain=[n.name for n in a.chain],
                             flops=a.recompute_flops)
        self.stats.remats += 1
        self.stats.remat_flops += a.recompute_flops

    def _drop(self, a: RematAction) -> None:
        # dropping ahead of a remat is an ordinary free: the bytes are
        # simply returned, nothing moves anywhere
        self.allocator.free(a.value)
        del self.env[a.value.name]

    # -- reporting -------------------------------------------------------

    def planned_live_at(self, index: int) -> int:
        return self.plan.planned_live[index]
