"""Multilinear algebra primitives (the tensorly subset we need).

Implemented directly on NumPy so the library has zero dependencies
beyond the scientific stack: unfold/fold, mode-n products, truncated
SVD (via ``scipy.linalg.svd`` with ``full_matrices=False`` — the
incomplete-SVD idiom from the optimization guide), and the Khatri–Rao
product used by CP-ALS.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

__all__ = [
    "unfold",
    "fold",
    "mode_dot",
    "multi_mode_dot",
    "truncated_svd",
    "khatri_rao",
    "relative_error",
]


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding: shape ``(shape[mode], prod(other dims))``.

    Uses the standard (Kolda–Bader) column ordering: the mode axis is
    moved to the front and the remainder is flattened in C order.
    """
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


def fold(matrix: np.ndarray, mode: int, shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`unfold` for the given full tensor ``shape``."""
    moved_shape = (shape[mode],) + tuple(s for i, s in enumerate(shape) if i != mode)
    return np.moveaxis(matrix.reshape(moved_shape), 0, mode)


def mode_dot(tensor: np.ndarray, matrix: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` product ``tensor ×_mode matrix``.

    ``matrix`` has shape ``(new_dim, shape[mode])``.
    """
    if matrix.shape[1] != tensor.shape[mode]:
        raise ValueError(
            f"mode-{mode} product: matrix cols {matrix.shape[1]} != dim {tensor.shape[mode]}")
    out = np.tensordot(matrix, tensor, axes=([1], [mode]))
    return np.moveaxis(out, 0, mode)


def multi_mode_dot(tensor: np.ndarray, matrices: list[np.ndarray],
                   modes: list[int]) -> np.ndarray:
    out = tensor
    for matrix, mode in zip(matrices, modes):
        out = mode_dot(out, matrix, mode)
    return out


def truncated_svd(matrix: np.ndarray, rank: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rank-``rank`` SVD ``(U, s, Vt)`` with thin matrices."""
    rank = int(rank)
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    u, s, vt = scipy.linalg.svd(matrix, full_matrices=False, lapack_driver="gesdd")
    rank = min(rank, s.shape[0])
    return u[:, :rank], s[:rank], vt[:rank]


def khatri_rao(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Column-wise Kronecker product of ``(m, r)`` and ``(n, r)`` -> ``(m·n, r)``."""
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"khatri_rao rank mismatch: {a.shape[1]} vs {b.shape[1]}")
    m, r = a.shape
    n, _ = b.shape
    return (a[:, None, :] * b[None, :, :]).reshape(m * n, r)


def relative_error(original: np.ndarray, approx: np.ndarray) -> float:
    """Frobenius relative reconstruction error."""
    denom = float(np.linalg.norm(original))
    if denom == 0.0:
        return float(np.linalg.norm(approx))
    return float(np.linalg.norm(original - approx)) / denom
