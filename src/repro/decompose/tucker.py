"""Tucker-2 decomposition of convolution kernels (paper's baseline).

A conv kernel ``W ∈ R^{Cout×Cin×Kh×Kw}`` is factorized along its two
channel modes (the "Tucker-2" variant standard for CNN compression):

.. math::  W \\approx G \\times_0 U_{out} \\times_1 U_{in}

with ``U_out ∈ R^{Cout×R_out}``, ``U_in ∈ R^{Cin×R_in}`` and core
``G ∈ R^{R_out×R_in×Kh×Kw}``.  The resulting three-layer sequence
(Figure 2b of the paper):

- **fconv**: 1×1 conv ``Cin→R_in`` with weight ``U_inᵀ``,
- **core**:  Kh×Kw conv ``R_in→R_out`` carrying the original
  stride/padding, weight ``G``,
- **lconv**: 1×1 conv ``R_out→Cout`` with weight ``U_out`` and the
  original bias.

Initialized by HOSVD (truncated SVDs of the two mode unfoldings) and
refined with a few HOOI alternating passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .linalg import mode_dot, relative_error, truncated_svd, unfold

__all__ = ["Tucker2Factors", "tucker2_decompose"]


@dataclass(frozen=True)
class Tucker2Factors:
    """Factors of a Tucker-2 conv decomposition."""

    core: np.ndarray    # (R_out, R_in, Kh, Kw)
    u_out: np.ndarray   # (Cout, R_out)
    u_in: np.ndarray    # (Cin, R_in)

    def reconstruct(self) -> np.ndarray:
        """Approximate kernel ``G ×_0 U_out ×_1 U_in``."""
        return mode_dot(mode_dot(self.core, self.u_out, 0), self.u_in, 1)

    @property
    def rank_out(self) -> int:
        return self.core.shape[0]

    @property
    def rank_in(self) -> int:
        return self.core.shape[1]

    def num_params(self) -> int:
        return self.core.size + self.u_out.size + self.u_in.size

    def error(self, weight: np.ndarray) -> float:
        return relative_error(weight, self.reconstruct())


def tucker2_decompose(weight: np.ndarray, rank_out: int, rank_in: int,
                      *, hooi_iters: int = 3) -> Tucker2Factors:
    """Tucker-2 factorization of a 4D conv kernel.

    Parameters
    ----------
    weight:
        Kernel of shape ``(Cout, Cin, Kh, Kw)``.
    rank_out, rank_in:
        Target channel ranks (clamped to the actual dims).
    hooi_iters:
        Alternating refinement sweeps after the HOSVD init.  Each sweep
        re-solves one factor against the other via a truncated SVD of
        the projected unfolding — cheap (the unfoldings are small) and
        measurably tightens the fit at low ranks.
    """
    if weight.ndim != 4:
        raise ValueError(f"expected 4D conv kernel, got shape {weight.shape}")
    cout, cin, _kh, _kw = weight.shape
    rank_out = max(1, min(int(rank_out), cout))
    rank_in = max(1, min(int(rank_in), cin))
    work = weight.astype(np.float64, copy=False)

    # HOSVD init: leading left singular vectors of each mode unfolding
    u_out, _, _ = truncated_svd(unfold(work, 0), rank_out)
    u_in, _, _ = truncated_svd(unfold(work, 1), rank_in)

    # HOOI refinement (orthogonal factors: projection is the transpose)
    for _ in range(max(0, hooi_iters)):
        projected = mode_dot(work, u_in.T, 1)           # fix U_in, solve U_out
        u_out, _, _ = truncated_svd(unfold(projected, 0), rank_out)
        projected = mode_dot(work, u_out.T, 0)          # fix U_out, solve U_in
        u_in, _, _ = truncated_svd(unfold(projected, 1), rank_in)

    core = mode_dot(mode_dot(work, u_out.T, 0), u_in.T, 1)
    dtype = weight.dtype
    return Tucker2Factors(core=core.astype(dtype), u_out=u_out.astype(dtype),
                          u_in=u_in.astype(dtype))
