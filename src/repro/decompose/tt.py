"""Tensor-Train decomposition of convolution kernels.

The kernel is permuted to ``(Cin, Kh, Kw, Cout)`` and factorized by
TT-SVD (Oseledets) into four cores with ranks ``(r1, r2, r3)``:

.. math::
   W_{c,h,w,o} \\approx \\sum_{i,j,k} G1_{c,i}\\, G2_{i,h,j}\\,
   G3_{j,w,k}\\, G4_{k,o}

which lowers to the sequence (first/last layers again 1×1 convs, per
Figure 1c/2b of the paper):

- **fconv**: 1×1 conv ``Cin→r1`` (``G1ᵀ``),
- **core₁**: Kh×1 conv ``r1→r2`` with vertical stride/padding (``G2``),
- **core₂**: 1×Kw conv ``r2→r3`` with horizontal stride/padding (``G3``),
- **lconv**: 1×1 conv ``r3→Cout`` (``G4ᵀ``) plus original bias.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .linalg import relative_error, truncated_svd

__all__ = ["TTFactors", "tt_decompose"]


@dataclass(frozen=True)
class TTFactors:
    """TT cores of a conv kernel in ``(Cin, Kh, Kw, Cout)`` order."""

    g1: np.ndarray  # (Cin, r1)
    g2: np.ndarray  # (r1, Kh, r2)
    g3: np.ndarray  # (r2, Kw, r3)
    g4: np.ndarray  # (r3, Cout)

    @property
    def ranks(self) -> tuple[int, int, int]:
        return self.g1.shape[1], self.g2.shape[2], self.g3.shape[2]

    def reconstruct(self) -> np.ndarray:
        """Approximate kernel back in conv layout ``(Cout, Cin, Kh, Kw)``."""
        t = np.einsum("ci,ihj,jwk,ko->chwo", self.g1, self.g2, self.g3, self.g4,
                      optimize=True)
        return t.transpose(3, 0, 1, 2)

    def num_params(self) -> int:
        return self.g1.size + self.g2.size + self.g3.size + self.g4.size

    def error(self, weight: np.ndarray) -> float:
        return relative_error(weight, self.reconstruct())


def tt_decompose(weight: np.ndarray, ranks: tuple[int, int, int]) -> TTFactors:
    """TT-SVD factorization of a 4D conv kernel ``(Cout, Cin, Kh, Kw)``.

    ``ranks = (r1, r2, r3)`` bound the three TT bond dimensions; each is
    clamped to the maximal achievable rank of its unfolding.
    """
    if weight.ndim != 4:
        raise ValueError(f"expected 4D conv kernel, got shape {weight.shape}")
    cout, cin, kh, kw = weight.shape
    r1, r2, r3 = (max(1, int(r)) for r in ranks)
    # TT order (Cin, Kh, Kw, Cout) keeps the channel-reducing factor first
    work = weight.transpose(1, 2, 3, 0).astype(np.float64, copy=False)

    m = work.reshape(cin, kh * kw * cout)
    u1, s1, vt1 = truncated_svd(m, r1)
    g1 = u1                                            # (Cin, r1)
    rest = (s1[:, None] * vt1)                         # (r1, Kh*Kw*Cout)
    r1 = g1.shape[1]

    m = rest.reshape(r1 * kh, kw * cout)
    u2, s2, vt2 = truncated_svd(m, r2)
    r2 = u2.shape[1]
    g2 = u2.reshape(r1, kh, r2)
    rest = (s2[:, None] * vt2)                         # (r2, Kw*Cout)

    m = rest.reshape(r2 * kw, cout)
    u3, s3, vt3 = truncated_svd(m, r3)
    r3 = u3.shape[1]
    g3 = u3.reshape(r2, kw, r3)
    g4 = (s3[:, None] * vt3)                           # (r3, Cout)

    dtype = weight.dtype
    return TTFactors(g1=g1.astype(dtype), g2=g2.astype(dtype),
                     g3=g3.astype(dtype), g4=g4.astype(dtype))
