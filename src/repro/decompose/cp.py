"""Canonical Polyadic (CP) decomposition of convolution kernels.

``W ∈ R^{Cout×Cin×Kh×Kw}`` is approximated by a rank-``R`` sum of
outer products

.. math::  W_{o,c,h,w} \\approx \\sum_{r=1}^{R} A_{o,r} B_{c,r} C_{h,r} D_{w,r}

fitted with alternating least squares (CP-ALS, Kolda–Bader form with
per-iteration column normalization).  Following Lebedev et al., the
rank-R kernel lowers to a four-layer sequence:

- **fconv**: 1×1 conv ``Cin→R`` (rows of ``Bᵀ``),
- **depthwise Kh×1** conv, groups=R, vertical stride/padding,
- **depthwise 1×Kw** conv, groups=R, horizontal stride/padding,
- **lconv**: 1×1 conv ``R→Cout`` (rows of ``A``) plus original bias.

The leading 1×1 reduces channels and the trailing 1×1 restores them —
structurally identical to Tucker's fconv/lconv, which is what lets
TeMCO's passes apply uniformly across decomposition methods (§5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .linalg import khatri_rao, relative_error, unfold

__all__ = ["CPFactors", "cp_decompose"]


@dataclass(frozen=True)
class CPFactors:
    """CP factors with weights absorbed into the first factor."""

    a: np.ndarray  # (Cout, R)
    b: np.ndarray  # (Cin, R)
    c: np.ndarray  # (Kh, R)
    d: np.ndarray  # (Kw, R)

    @property
    def rank(self) -> int:
        return self.a.shape[1]

    def reconstruct(self) -> np.ndarray:
        return np.einsum("or,cr,hr,wr->ochw", self.a, self.b, self.c, self.d,
                         optimize=True)

    def num_params(self) -> int:
        return self.a.size + self.b.size + self.c.size + self.d.size

    def error(self, weight: np.ndarray) -> float:
        return relative_error(weight, self.reconstruct())


def cp_decompose(weight: np.ndarray, rank: int, *, max_iters: int = 60,
                 tol: float = 1e-7, seed: int = 0) -> CPFactors:
    """CP-ALS factorization of a 4D conv kernel.

    Converges when the relative change of the fit drops below ``tol``
    or after ``max_iters`` sweeps.  Deterministic given ``seed``.
    """
    if weight.ndim != 4:
        raise ValueError(f"expected 4D conv kernel, got shape {weight.shape}")
    rank = max(1, min(int(rank), weight.size))
    work = weight.astype(np.float64, copy=False)
    dims = work.shape
    rng = np.random.default_rng(seed)
    factors = [rng.normal(size=(d, rank)) for d in dims]
    unfoldings = [unfold(work, m) for m in range(4)]
    norm_w = np.linalg.norm(work)
    prev_fit = -np.inf

    for _ in range(max_iters):
        for mode in range(4):
            others = [factors[m] for m in range(4) if m != mode]
            # Khatri–Rao of the other factors in unfolding order
            kr = others[0]
            for f in others[1:]:
                kr = khatri_rao(kr, f)
            gram = np.ones((rank, rank))
            for f in others:
                gram *= f.T @ f
            rhs = unfoldings[mode] @ kr
            factors[mode] = np.linalg.solve(gram.T, rhs.T).T
            # normalize columns (absorb scale into the next solve; final
            # scales end up in factor 0 after the last sweep below)
            if mode != 0:
                norms = np.linalg.norm(factors[mode], axis=0)
                norms[norms == 0] = 1.0
                factors[mode] /= norms
                factors[0] *= norms

        residual = relative_error(work, CPFactors(*factors).reconstruct())
        fit = 1.0 - residual
        if abs(fit - prev_fit) < tol:
            break
        prev_fit = fit
    del norm_w

    dtype = weight.dtype
    return CPFactors(*(f.astype(dtype) for f in factors))
