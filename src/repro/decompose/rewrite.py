"""Graph rewrite: replace convolutions with decomposed sequences.

This is the "existing tensor decomposition scheme" TeMCO takes as its
input (paper §2.1 / Figure 2): each eligible convolution becomes a
*decomposed convolution sequence* ``fconv → core(s) → lconv`` whose
output shape matches the original layer, so the surrounding graph is
untouched.  TeMCO's own passes (:mod:`repro.core`) then optimize the
*memory* behaviour of the decomposed graph.

Metadata left for the optimizer:

- ``role``: ``"fconv" | "core" | "lconv"`` on each new conv,
- ``decomposed_from``: original node name (groups a sequence),
- ``orig_flops``: FLOPs of the original convolution, stored on the
  lconv — Algorithm 1's ``COMPUTE_THRESHOLD`` ("FLOPS of the
  corresponding parts of the original model without decomposition"),
- ``fit_error``: relative Frobenius reconstruction error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ir import ops as _ops
from ..ir.emit import make_node
from ..ir.graph import Graph
from ..ir.node import Node
from .cp import cp_decompose
from .rank import RankPlan, plan_ranks, plan_ranks_energy
from .tt import tt_decompose
from .tucker import tucker2_decompose

__all__ = ["DecompositionConfig", "DecompositionRecord", "decompose_graph",
           "decomposition_records"]

_METHODS = ("tucker", "cp", "tt")


@dataclass(frozen=True)
class DecompositionConfig:
    """What to decompose and how.

    Defaults mirror the paper's evaluation setup: Tucker at ratio 0.1,
    applied to every spatial convolution with enough channels to be
    worth factorizing (the first RGB layer is naturally excluded by
    ``min_channels``).
    """

    method: str = "tucker"
    ratio: float = 0.1
    #: rank policy: "ratio" (the paper's fixed fraction of channels) or
    #: "energy" (per-layer spectral-energy thresholding at ``energy``)
    rank_policy: str = "ratio"
    energy: float = 0.9
    #: convolutions with fewer input/output channels are left alone; the
    #: defaults decompose everything with a meaningful output width,
    #: including the RGB stem (the paper decomposes all 10 models'
    #: convolutions at ratio 0.1 and retrains; since the decomposed
    #: model is the baseline, decomposing the stem is semantics-neutral
    #: for the memory/time comparison)
    min_in_channels: int = 3
    min_out_channels: int = 16
    skip_names: tuple[str, ...] = ()
    hooi_iters: int = 2
    cp_iters: int = 40
    seed: int = 0

    def __post_init__(self) -> None:
        if self.method not in _METHODS:
            raise ValueError(f"unknown method {self.method!r}; choose from {_METHODS}")
        if not (0.0 < self.ratio <= 1.0):
            raise ValueError(f"ratio must be in (0, 1], got {self.ratio}")
        if self.rank_policy not in ("ratio", "energy"):
            raise ValueError(f"unknown rank_policy {self.rank_policy!r}")
        if not (0.0 < self.energy <= 1.0):
            raise ValueError(f"energy must be in (0, 1], got {self.energy}")


@dataclass(frozen=True)
class DecompositionRecord:
    """Book-keeping for one decomposed convolution."""

    original: str
    method: str
    plan: RankPlan
    fit_error: float
    new_nodes: tuple[str, ...]
    params_before: int
    params_after: int


def _eligible(node: Node, config: DecompositionConfig) -> bool:
    if node.op != "conv2d" or node.name in config.skip_names:
        return False
    if node.attrs.get("role") is not None:  # already part of a sequence
        return False
    if int(node.attrs.get("groups", 1)) != 1:
        return False
    if list(node.attrs.get("dilation", [1, 1])) != [1, 1]:
        return False  # the factorized sequence does not model dilation
    weight = node.params["weight"]
    cout, cin, kh, kw = weight.shape
    if kh == 1 and kw == 1:
        return False  # pointwise convs gain nothing from channel factorization
    return cin >= config.min_in_channels and cout >= config.min_out_channels


def decompose_graph(graph: Graph, config: DecompositionConfig | None = None) -> Graph:
    """Return a decomposed copy of ``graph`` (the input is not mutated)."""
    config = config or DecompositionConfig()
    out = graph.clone(f"{graph.name}.{config.method}")
    for node in list(out.nodes):
        if _eligible(node, config):
            _replace_conv(out, node, config)
    out.validate()
    return out


def _replace_conv(graph: Graph, node: Node, config: DecompositionConfig) -> None:
    weight = node.params["weight"]
    bias = node.params.get("bias")
    cout, cin, kh, kw = weight.shape
    sh, sw = node.attrs.get("stride", [1, 1])
    ph, pw = node.attrs.get("padding", [0, 0])
    if config.rank_policy == "energy":
        plan = plan_ranks_energy(weight, config.energy)
    else:
        plan = plan_ranks(cin, cout, config.ratio)
    orig_flops = _ops.node_flops(node)
    x = node.inputs[0]
    common = {"decomposed_from": node.name, "orig_flops": orig_flops}

    if config.method == "tucker":
        factors = tucker2_decompose(weight, plan.rank_out, plan.rank_in,
                                    hooi_iters=config.hooi_iters)
        fit = factors.error(weight)
        fconv = make_node(
            graph, "conv2d", [x],
            attrs={"stride": [1, 1], "padding": [0, 0], "groups": 1,
                   "role": "fconv", **common},
            params={"weight": factors.u_in.T.reshape(plan.rank_in, cin, 1, 1).copy()},
            name=f"{node.name}.fconv")
        core = make_node(
            graph, "conv2d", [fconv.output],
            attrs={"stride": [sh, sw], "padding": [ph, pw], "groups": 1,
                   "role": "core", **common},
            params={"weight": factors.core.copy()},
            name=f"{node.name}.core")
        lconv = _make_lconv(graph, core.output, factors.u_out, bias, node.name,
                            common, fit)
        new_nodes = [fconv, core, lconv]

    elif config.method == "cp":
        factors = cp_decompose(weight, plan.cp_rank, max_iters=config.cp_iters,
                               seed=config.seed)
        fit = factors.error(weight)
        r = factors.rank
        fconv = make_node(
            graph, "conv2d", [x],
            attrs={"stride": [1, 1], "padding": [0, 0], "groups": 1,
                   "role": "fconv", **common},
            params={"weight": factors.b.T.reshape(r, cin, 1, 1).copy()},
            name=f"{node.name}.fconv")
        # depthwise vertical: weight (R, 1, Kh, 1) from C (Kh, R)
        conv_h = make_node(
            graph, "conv2d", [fconv.output],
            attrs={"stride": [sh, 1], "padding": [ph, 0], "groups": r,
                   "role": "core", **common},
            params={"weight": factors.c.T.reshape(r, 1, kh, 1).copy()},
            name=f"{node.name}.dw_h")
        conv_w = make_node(
            graph, "conv2d", [conv_h.output],
            attrs={"stride": [1, sw], "padding": [0, pw], "groups": r,
                   "role": "core", **common},
            params={"weight": factors.d.T.reshape(r, 1, 1, kw).copy()},
            name=f"{node.name}.dw_w")
        lconv = _make_lconv(graph, conv_w.output, factors.a, bias, node.name,
                            common, fit)
        new_nodes = [fconv, conv_h, conv_w, lconv]

    else:  # tt
        factors = tt_decompose(weight, (plan.rank_in, plan.tt_mid, plan.rank_out))
        fit = factors.error(weight)
        r1, r2, r3 = factors.ranks
        fconv = make_node(
            graph, "conv2d", [x],
            attrs={"stride": [1, 1], "padding": [0, 0], "groups": 1,
                   "role": "fconv", **common},
            params={"weight": factors.g1.T.reshape(r1, cin, 1, 1).copy()},
            name=f"{node.name}.fconv")
        # vertical core: out r2, in r1, kernel (Kh, 1); g2 is (r1, Kh, r2)
        conv_h = make_node(
            graph, "conv2d", [fconv.output],
            attrs={"stride": [sh, 1], "padding": [ph, 0], "groups": 1,
                   "role": "core", **common},
            params={"weight": factors.g2.transpose(2, 0, 1).reshape(r2, r1, kh, 1).copy()},
            name=f"{node.name}.core_h")
        # horizontal core: out r3, in r2, kernel (1, Kw); g3 is (r2, Kw, r3)
        conv_w = make_node(
            graph, "conv2d", [conv_h.output],
            attrs={"stride": [1, sw], "padding": [0, pw], "groups": 1,
                   "role": "core", **common},
            params={"weight": factors.g3.transpose(2, 0, 1).reshape(r3, r2, 1, kw).copy()},
            name=f"{node.name}.core_w")
        lconv = _make_lconv(graph, conv_w.output, factors.g4.T, bias, node.name,
                            common, fit)
        new_nodes = [fconv, conv_h, conv_w, lconv]

    index = graph.index_of(node)
    for offset, new in enumerate(new_nodes):
        graph.add_node(new, index=index + offset)
    graph.replace_uses(node.output, new_nodes[-1].output)
    graph.remove_node(node)


def _make_lconv(graph: Graph, x, u_out: np.ndarray, bias, base_name: str,
                common: dict, fit: float) -> Node:
    """Final 1×1 restore conv: weight ``(Cout, R_out, 1, 1)`` + original bias."""
    cout, rank = u_out.shape
    params = {"weight": u_out.reshape(cout, rank, 1, 1).copy()}
    if bias is not None:
        params["bias"] = bias
    return make_node(
        graph, "conv2d", [x],
        attrs={"stride": [1, 1], "padding": [0, 0], "groups": 1,
               "role": "lconv", "fit_error": float(fit), **common},
        params=params, name=f"{base_name}.lconv")


def decomposition_records(graph: Graph) -> list[DecompositionRecord]:
    """Summarize the decomposed sequences present in ``graph``."""
    by_origin: dict[str, list[Node]] = {}
    for node in graph.nodes:
        origin = node.attrs.get("decomposed_from")
        if origin is not None:
            by_origin.setdefault(origin, []).append(node)
    records = []
    for origin, nodes in sorted(by_origin.items()):
        lconvs = [n for n in nodes if n.attrs.get("role") == "lconv"]
        fconvs = [n for n in nodes if n.attrs.get("role") == "fconv"]
        if not lconvs or not fconvs:
            continue
        lconv, fconv = lconvs[0], fconvs[0]
        cin = fconv.params["weight"].shape[1]
        cout = lconv.params["weight"].shape[0]
        rank_in = fconv.params["weight"].shape[0]
        rank_out = lconv.params["weight"].shape[1]
        plan = RankPlan(cin=cin, cout=cout, rank_in=rank_in, rank_out=rank_out,
                        cp_rank=rank_in, tt_mid=rank_in)
        records.append(DecompositionRecord(
            original=origin, method="unknown", plan=plan,
            fit_error=float(lconv.attrs.get("fit_error", float("nan"))),
            new_nodes=tuple(n.name for n in nodes),
            params_before=0,
            params_after=sum(n.param_elements() for n in nodes)))
    return records
