"""Rank selection for decomposed convolutions.

The paper applies Tucker decomposition "with a decomposition ratio of
0.1": every channel dimension of a decomposed convolution is shrunk to
``ratio`` of its original size (floored at 1).  The same ratio rule is
reused for the CP rank and TT internal ranks so the three methods are
comparable at equal ratio.

:func:`plan_ranks_energy` implements the data-driven alternative the
Tucker-compression literature uses (VBMF-style): keep the smallest
ranks whose singular values capture a target fraction of each mode
unfolding's spectral energy, so well-conditioned layers compress harder
than information-dense ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RankPlan", "plan_ranks", "plan_ranks_energy", "rank_by_energy"]


@dataclass(frozen=True)
class RankPlan:
    """Channel ranks of one decomposed convolution sequence.

    - Tucker-2 uses ``(rank_in, rank_out)`` — the reduced input channel
      count after fconv and the reduced output channel count before
      lconv (the paper's :math:`C_1 .. C_4`).
    - CP uses the single ``cp_rank``.
    - TT uses ``(rank_in, tt_mid, rank_out)``.
    """

    cin: int
    cout: int
    rank_in: int
    rank_out: int
    cp_rank: int
    tt_mid: int

    @property
    def tucker(self) -> tuple[int, int]:
        return self.rank_out, self.rank_in


def plan_ranks(cin: int, cout: int, ratio: float, *, min_rank: int = 1) -> RankPlan:
    """Compute ranks from the paper's decomposition ratio."""
    if not (0.0 < ratio <= 1.0):
        raise ValueError(f"decomposition ratio must be in (0, 1], got {ratio}")
    if cin < 1 or cout < 1:
        raise ValueError(f"bad channel counts: cin={cin}, cout={cout}")

    def shrink(c: int) -> int:
        return max(min_rank, min(c, round(c * ratio)))

    rank_in = shrink(cin)
    rank_out = shrink(cout)
    # CP's single rank plays the role of both reduced dims; use the mean
    # so parameter budgets are comparable across methods at equal ratio.
    cp_rank = max(min_rank, round((rank_in + rank_out) / 2))
    tt_mid = max(min_rank, round((rank_in + rank_out) / 2))
    return RankPlan(cin=cin, cout=cout, rank_in=rank_in, rank_out=rank_out,
                    cp_rank=cp_rank, tt_mid=tt_mid)


def rank_by_energy(matrix: np.ndarray, energy: float, *,
                   min_rank: int = 1) -> int:
    """Smallest rank whose singular values hold ``energy`` of the total
    squared spectral mass of ``matrix``."""
    if not (0.0 < energy <= 1.0):
        raise ValueError(f"energy must be in (0, 1], got {energy}")
    s = np.linalg.svd(np.asarray(matrix, dtype=np.float64),
                      compute_uv=False)
    total = float((s * s).sum())
    if total == 0.0:
        return min_rank
    cumulative = np.cumsum(s * s) / total
    rank = int(np.searchsorted(cumulative, energy - 1e-12) + 1)
    return max(min_rank, min(rank, s.shape[0]))


def plan_ranks_energy(weight: np.ndarray, energy: float, *,
                      min_rank: int = 1) -> RankPlan:
    """Data-driven rank plan: per-mode spectral-energy thresholding.

    ``weight`` is a conv kernel ``(Cout, Cin, Kh, Kw)``.  The output
    rank comes from the mode-0 unfolding's spectrum, the input rank
    from mode-1 — exactly the matrices Tucker-2 factorizes, so the plan
    is a certificate: the HOSVD factors at these ranks retain at least
    ``energy`` of each unfolding's mass.
    """
    if weight.ndim != 4:
        raise ValueError(f"expected a 4D conv kernel, got {weight.shape}")
    cout, cin = weight.shape[0], weight.shape[1]
    unfold0 = weight.reshape(cout, -1)
    unfold1 = np.moveaxis(weight, 1, 0).reshape(cin, -1)
    rank_out = rank_by_energy(unfold0, energy, min_rank=min_rank)
    rank_in = rank_by_energy(unfold1, energy, min_rank=min_rank)
    mid = max(min_rank, round((rank_in + rank_out) / 2))
    return RankPlan(cin=cin, cout=cout, rank_in=rank_in, rank_out=rank_out,
                    cp_rank=mid, tt_mid=mid)
