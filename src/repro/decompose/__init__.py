"""Tensor decomposition of convolution layers (Tucker-2 / CP / TT).

Implements the decomposition substrate TeMCO optimizes on top of:
from-scratch multilinear algebra, the three factorization methods of
the paper's Figure 1, ratio-based rank planning, and the graph rewrite
that turns convolutions into fconv→core(s)→lconv sequences.
"""

from .cp import CPFactors, cp_decompose
from .linalg import (fold, khatri_rao, mode_dot, multi_mode_dot,
                     relative_error, truncated_svd, unfold)
from .rank import RankPlan, plan_ranks, plan_ranks_energy, rank_by_energy
from .rewrite import (DecompositionConfig, DecompositionRecord,
                      decompose_graph, decomposition_records)
from .tt import TTFactors, tt_decompose
from .tucker import Tucker2Factors, tucker2_decompose

__all__ = [
    "CPFactors",
    "cp_decompose",
    "TTFactors",
    "tt_decompose",
    "Tucker2Factors",
    "tucker2_decompose",
    "RankPlan",
    "plan_ranks",
    "plan_ranks_energy",
    "rank_by_energy",
    "DecompositionConfig",
    "DecompositionRecord",
    "decompose_graph",
    "decomposition_records",
    "unfold",
    "fold",
    "mode_dot",
    "multi_mode_dot",
    "truncated_svd",
    "khatri_rao",
    "relative_error",
]
