"""TeMCO reproduction: tensor memory compiler optimization across tensor
decompositions in deep-learning inference (Song et al., ICPP 2024).

A from-scratch NumPy stack:

- :mod:`repro.ir` — SSA tensor-graph IR with shape inference,
- :mod:`repro.kernels` — vectorized kernels incl. the tiled fused kernel,
- :mod:`repro.runtime` — executor with framework-faithful memory accounting,
- :mod:`repro.decompose` — Tucker-2 / CP / TT convolution decomposition,
- :mod:`repro.core` — the TeMCO compiler (skip-connection optimization,
  activation layer fusion, concat/add layer transformations),
- :mod:`repro.models` — the 10-model benchmark zoo,
- :mod:`repro.data` — synthetic datasets + metrics,
- :mod:`repro.bench` — drivers regenerating the paper's figures,
- :mod:`repro.tune` — fused-kernel tile autotuning with a persistent
  compiled-plan cache.

Quickstart::

    import numpy as np
    from repro import build_model, decompose_graph, optimize, InferenceSession

    model = build_model("vgg16", batch=4)
    decomposed = decompose_graph(model)      # Tucker, ratio 0.1 (the paper's setup)
    optimized, report = optimize(decomposed) # TeMCO
    print(report.summary())

    x = np.random.default_rng(0).normal(size=(4, 3, 64, 64)).astype(np.float32)
    result = InferenceSession(optimized).run(x)
    print(result.memory.summary())
"""

from .core import (TeMCOCompiler, TeMCOConfig, assert_equivalent,
                   compare_graphs, estimate_peak_internal, optimize)
from .decompose import DecompositionConfig, decompose_graph
from .ir import DType, Graph, GraphBuilder, Node, Value, format_graph
from .models import MODEL_ZOO, build_model, model_names
from .obs import (NoopTracer, Tracer, configure_logging, get_tracer,
                  use_tracer, write_chrome_trace)
from .runtime import InferenceSession, MemoryProfile, ParallelRunner, execute
from .tune import TuneCache, TuneConfig, cached_overrides, tune_model

from ._version import __version__

__all__ = [
    "__version__",
    "DType",
    "Graph",
    "GraphBuilder",
    "Node",
    "Value",
    "format_graph",
    "DecompositionConfig",
    "decompose_graph",
    "TeMCOCompiler",
    "TeMCOConfig",
    "optimize",
    "assert_equivalent",
    "compare_graphs",
    "estimate_peak_internal",
    "MODEL_ZOO",
    "build_model",
    "model_names",
    "InferenceSession",
    "MemoryProfile",
    "ParallelRunner",
    "execute",
    "Tracer",
    "NoopTracer",
    "get_tracer",
    "use_tracer",
    "configure_logging",
    "write_chrome_trace",
    "TuneCache",
    "TuneConfig",
    "tune_model",
    "cached_overrides",
]
