"""repro.plan: budget-constrained memory planning.

A new layer between compilation and execution: given an optimized
graph and a byte budget, :func:`plan_memory` chooses per-tensor
``keep`` / ``spill`` / ``remat`` actions that the runtime enforces at
node boundaries (see :mod:`repro.runtime.planned`), trading compute
and host-link transfers for resident bytes — the paper's core trade,
promoted to a user-facing contract.
"""

from .budget import BudgetSyntaxError, format_bytes, parse_budget
from .planner import (InfeasibleBudget, KeepAction, MemoryPlan, PlanAction,
                      PlanCostModel, RematAction, SpillAction, plan_memory,
                      simulate_plan)
from .store import PrefetchWorker, SpillStore, SpillStoreError

__all__ = [
    "BudgetSyntaxError",
    "parse_budget",
    "format_bytes",
    "PlanCostModel",
    "KeepAction",
    "SpillAction",
    "RematAction",
    "PlanAction",
    "MemoryPlan",
    "InfeasibleBudget",
    "plan_memory",
    "simulate_plan",
    "SpillStore",
    "SpillStoreError",
    "PrefetchWorker",
]
