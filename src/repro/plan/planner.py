"""Budget-constrained memory planner.

Given a (possibly TeMCO-optimized) graph and a byte budget for internal
tensors, :func:`plan_memory` produces a :class:`MemoryPlan`: a per-node
schedule of actions the executor enforces at node boundaries.

Three actions exist, generalizing the paper's core trade (compute
overhead vs. resident bytes) past compile-time graph rewriting:

- **keep** — leave a long-lived tensor resident (the default; recorded
  explicitly for the tensors that still make up the planned peak);
- **spill** — park a cold tensor in a host-side
  :class:`~repro.plan.store.SpillStore` after its last touch before a
  liveness gap, and prefetch it back (double-buffered, one node of
  lead) ahead of the next consumer;
- **remat** — drop the tensor and re-execute its recorded producing
  subgraph right before the next consumer, exactly the restore-chain
  recomputation of the paper's skip-connection optimization, but chosen
  dynamically by cost.

The planner greedily relieves the *predicted* peak: simulate the
executor's allocation schedule byte-for-byte, find the peak node, rank
the tensors idle across that node by cost-per-byte-relieved (transfer
seconds at the configured bandwidth vs. recompute seconds at the
configured FLOP rate), apply the cheapest, and repeat until the budget
holds.  When no candidate relieves a still-over-budget peak the typed
:class:`InfeasibleBudget` reports the residual bytes.

The simulation is the contract: it replicates the executor's event
order exactly (input binding, prefetch charges, remat transients,
output allocation, refcount frees, spills/drops), so the planned peak
and the measured ledger peak of an enforced run agree bit-for-bit —
`repro memcheck --budget` cross-checks exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..core.liveness import LiveInterval, analyze_liveness
from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.ops import node_flops
from ..ir.value import Value
from .budget import format_bytes

__all__ = ["PlanCostModel", "KeepAction", "SpillAction", "RematAction",
           "PlanAction", "MemoryPlan", "InfeasibleBudget", "plan_memory",
           "simulate_plan"]


@dataclass(frozen=True)
class PlanCostModel:
    """Knobs of the spill-vs-remat decision.

    Defaults model a PCIe-class host link (~12 GB/s effective) against
    a ~2 TFLOP/s compute budget; both are configurable per plan because
    the right answer flips with the hardware ratio.
    """

    #: host-link bandwidth used for spill + prefetch transfers
    spill_bandwidth_bytes_per_s: float = 12e9
    #: sustained rate assumed for rematerialization compute
    recompute_flops_per_s: float = 2e12
    #: nodes of lead between issuing a prefetch and needing the tensor
    #: (1 = the transfer overlaps the preceding node's compute)
    prefetch_lead: int = 1
    #: longest producing subgraph a remat action may re-execute
    max_chain_len: int = 8

    def spill_seconds(self, nbytes: int) -> float:
        return 2.0 * nbytes / self.spill_bandwidth_bytes_per_s

    def remat_seconds(self, flops: int) -> float:
        return flops / self.recompute_flops_per_s

    def to_dict(self) -> dict:
        return {
            "spill_bandwidth_bytes_per_s": self.spill_bandwidth_bytes_per_s,
            "recompute_flops_per_s": self.recompute_flops_per_s,
            "prefetch_lead": self.prefetch_lead,
            "max_chain_len": self.max_chain_len,
        }


@dataclass(frozen=True)
class KeepAction:
    """A tensor deliberately left resident at the planned peak."""

    value: Value
    kind: str = field(default="keep", init=False)

    @property
    def nbytes(self) -> int:
        return self.value.nbytes

    def cost_seconds(self, cm: PlanCostModel) -> float:
        return 0.0

    def to_dict(self) -> dict:
        return {"kind": "keep", "value": self.value.name,
                "nbytes": self.nbytes}


@dataclass(frozen=True)
class SpillAction:
    """Park ``value`` host-side across a liveness gap.

    The executor writes the tensor to the spill store after node
    ``spill_after`` (``-1`` = right after input binding), re-charges its
    bytes and issues the asynchronous fetch before node
    ``prefetch_issue``, and binds the fetched array before node
    ``next_use`` (``next_use == num_nodes`` means the tensor is a graph
    output restored at the end of the run).
    """

    value: Value
    spill_after: int
    prefetch_issue: int
    next_use: int
    kind: str = field(default="spill", init=False)

    @property
    def nbytes(self) -> int:
        return self.value.nbytes

    def cost_seconds(self, cm: PlanCostModel) -> float:
        return cm.spill_seconds(self.nbytes)

    def to_dict(self) -> dict:
        return {"kind": "spill", "value": self.value.name,
                "nbytes": self.nbytes, "spill_after": self.spill_after,
                "prefetch_issue": self.prefetch_issue,
                "next_use": self.next_use}


@dataclass(frozen=True)
class RematAction:
    """Drop ``value`` and recompute it from resident tensors.

    ``chain`` is the recorded producing subgraph, in schedule order;
    the executor re-runs it before node ``remat_before``, charging each
    intermediate transiently and re-allocating only ``value``.
    """

    value: Value
    drop_after: int
    remat_before: int
    chain: tuple[Node, ...]
    recompute_flops: int
    #: sum of chain-output bytes — the transient high-water extra while
    #: the chain replays
    transient_bytes: int
    kind: str = field(default="remat", init=False)

    @property
    def nbytes(self) -> int:
        return self.value.nbytes

    def cost_seconds(self, cm: PlanCostModel) -> float:
        return cm.remat_seconds(self.recompute_flops)

    def to_dict(self) -> dict:
        return {"kind": "remat", "value": self.value.name,
                "nbytes": self.nbytes, "drop_after": self.drop_after,
                "remat_before": self.remat_before,
                "chain": [n.name for n in self.chain],
                "recompute_flops": self.recompute_flops,
                "transient_bytes": self.transient_bytes}


PlanAction = Union[KeepAction, SpillAction, RematAction]


class InfeasibleBudget(RuntimeError):
    """No plan fits: reports how far the best plan still overshoots."""

    def __init__(self, graph_name: str, budget_bytes: int,
                 predicted_peak_bytes: int) -> None:
        self.graph_name = graph_name
        self.budget_bytes = budget_bytes
        self.predicted_peak_bytes = predicted_peak_bytes
        self.residual_bytes = predicted_peak_bytes - budget_bytes
        super().__init__(
            f"budget {format_bytes(budget_bytes)} is infeasible for "
            f"{graph_name!r}: the best plan still peaks at "
            f"{format_bytes(predicted_peak_bytes)} "
            f"(residual {format_bytes(self.residual_bytes)})")


@dataclass(frozen=True)
class MemoryPlan:
    """An executable per-node schedule of memory actions."""

    graph_name: str
    num_nodes: int
    budget_bytes: int | None
    #: predicted peak with no actions applied
    baseline_peak_bytes: int
    #: predicted peak of the enforced plan — what the ledger must measure
    planned_peak_bytes: int
    #: predicted live bytes sampled at each node (pre-free, matching
    #: the executor's :class:`~repro.runtime.memory_profile.MemoryEvent`)
    planned_live: tuple[int, ...]
    actions: tuple[PlanAction, ...]
    cost_model: PlanCostModel

    @property
    def spills(self) -> tuple[SpillAction, ...]:
        return tuple(a for a in self.actions if isinstance(a, SpillAction))

    @property
    def remats(self) -> tuple[RematAction, ...]:
        return tuple(a for a in self.actions if isinstance(a, RematAction))

    @property
    def keeps(self) -> tuple[KeepAction, ...]:
        return tuple(a for a in self.actions if isinstance(a, KeepAction))

    @property
    def spilled_bytes(self) -> int:
        return sum(a.nbytes for a in self.spills)

    @property
    def remat_flops(self) -> int:
        return sum(a.recompute_flops for a in self.remats)

    @property
    def relief_bytes(self) -> int:
        return self.baseline_peak_bytes - self.planned_peak_bytes

    @property
    def predicted_overhead_seconds(self) -> float:
        return sum(a.cost_seconds(self.cost_model) for a in self.actions)

    @property
    def within_budget(self) -> bool:
        return (self.budget_bytes is None
                or self.planned_peak_bytes <= self.budget_bytes)

    def to_dict(self) -> dict:
        return {
            "graph": self.graph_name,
            "num_nodes": self.num_nodes,
            "budget_bytes": self.budget_bytes,
            "baseline_peak_bytes": self.baseline_peak_bytes,
            "planned_peak_bytes": self.planned_peak_bytes,
            "relief_bytes": self.relief_bytes,
            "spilled_bytes": self.spilled_bytes,
            "remat_flops": self.remat_flops,
            "predicted_overhead_seconds": self.predicted_overhead_seconds,
            "within_budget": self.within_budget,
            "planned_live": list(self.planned_live),
            "actions": [a.to_dict() for a in self.actions],
            "cost_model": self.cost_model.to_dict(),
        }

    def summary(self) -> str:
        parts = [f"{len(self.spills)} spill(s)", f"{len(self.remats)} remat(s)",
                 f"peak {format_bytes(self.planned_peak_bytes)}"]
        if self.budget_bytes is not None:
            parts.append(f"budget {format_bytes(self.budget_bytes)}")
        return ", ".join(parts)


# ---------------------------------------------------------------------------
# simulation: the byte-exact mirror of the enforced executor schedule
# ---------------------------------------------------------------------------

def simulate_plan(graph: Graph, actions: dict[str, PlanAction]
                  ) -> tuple[list[int], int, int]:
    """Replay the executor's allocation schedule under ``actions``.

    Returns ``(planned_live, peak_bytes, peak_index)``: the per-node
    pre-free live-byte samples, the peak over the whole run (including
    input binding, prefetch charges and remat transients), and the node
    index where the peak is first reached (-1 = during input binding).
    """
    spill_at: dict[int, list[SpillAction]] = {}
    issue_at: dict[int, list[SpillAction]] = {}
    bind_at: dict[int, list[SpillAction]] = {}
    drop_at: dict[int, list[RematAction]] = {}
    remat_at: dict[int, list[RematAction]] = {}
    for a in actions.values():
        if isinstance(a, SpillAction):
            spill_at.setdefault(a.spill_after, []).append(a)
            issue_at.setdefault(a.prefetch_issue, []).append(a)
            bind_at.setdefault(a.next_use, []).append(a)
        elif isinstance(a, RematAction):
            drop_at.setdefault(a.drop_after, []).append(a)
            remat_at.setdefault(a.remat_before, []).append(a)

    refcount: dict[str, int] = {}
    for node in graph.nodes:
        for v in node.inputs:
            refcount[v.name] = refcount.get(v.name, 0) + 1
    for v in graph.outputs:
        refcount[v.name] = refcount.get(v.name, 0) + 1

    live = peak = 0
    peak_index = -1
    resident: set[str] = set()

    def bump(index: int) -> None:
        nonlocal peak, peak_index
        if live > peak:
            peak = live
            peak_index = index

    # input binding (ledger position -1)
    for v in graph.inputs:
        live += v.nbytes
        resident.add(v.name)
        bump(-1)
        if refcount.get(v.name, 0) == 0:
            live -= v.nbytes
            resident.discard(v.name)
    for a in spill_at.get(-1, ()):
        live -= a.nbytes
        resident.discard(a.value.name)

    planned: list[int] = []
    for index, node in enumerate(graph.nodes):
        # --- node boundary, before the kernel -------------------------
        for a in issue_at.get(index, ()):  # prefetch charge
            live += a.nbytes
            bump(index)
        for a in bind_at.get(index, ()):   # array lands; bytes already charged
            resident.add(a.value.name)
        for a in remat_at.get(index, ()):  # chain replay: transient highs
            transient = live
            for cnode in a.chain:
                transient += cnode.output.nbytes
                if transient > peak:
                    peak = transient
                    peak_index = index
            live += a.value.nbytes         # intermediates freed, target stays
            resident.add(a.value.name)
        # --- the node itself ------------------------------------------
        live += node.output.nbytes
        resident.add(node.output.name)
        bump(index)
        planned.append(live)               # pre-free sample == MemoryEvent
        for v in node.inputs:
            refcount[v.name] -= 1
            if refcount[v.name] == 0 and v.name in resident:
                live -= v.nbytes
                resident.discard(v.name)
        if refcount.get(node.output.name, 0) == 0 and node.output.name in resident:
            live -= node.output.nbytes
            resident.discard(node.output.name)
        # --- node boundary, after the frees ---------------------------
        for a in spill_at.get(index, ()):
            live -= a.nbytes
            resident.discard(a.value.name)
        for a in drop_at.get(index, ()):
            live -= a.nbytes
            resident.discard(a.value.name)
    return planned, peak, peak_index


# ---------------------------------------------------------------------------
# candidate discovery
# ---------------------------------------------------------------------------

def _resident_at(value: Value, index: int,
                 intervals: dict[Value, LiveInterval],
                 actions: dict[str, PlanAction]) -> bool:
    """Is ``value`` bound in the executor env during node ``index``,
    under the original liveness *and* the already-applied actions?"""
    iv = intervals.get(value)
    if iv is None or not iv.live_at(index):
        return False
    a = actions.get(value.name)
    if isinstance(a, SpillAction):
        return index <= a.spill_after or index >= a.next_use
    if isinstance(a, RematAction):
        # strict: the chain that restores it runs at remat_before, and
        # chain ordering within one boundary is not guaranteed
        return index <= a.drop_after or index > a.remat_before
    return True


def _collect_chain(graph: Graph, value: Value, at_index: int,
                   intervals: dict[Value, LiveInterval],
                   actions: dict[str, PlanAction],
                   max_len: int) -> tuple[Node, ...] | None:
    """The producing subgraph that recomputes ``value`` at ``at_index``
    from tensors resident there, or None when no bounded chain exists."""
    producer = graph.producer_of(value)
    if producer is None:
        return None
    chain: list[Node] = []
    seen = {value.name}
    stack = [producer]
    while stack:
        node = stack.pop()
        chain.append(node)
        if len(chain) > max_len:
            return None
        for u in node.inputs:
            if u.name in seen or _resident_at(u, at_index, intervals, actions):
                continue
            pred = graph.producer_of(u)
            if pred is None:
                return None  # needs a graph input that is gone
            seen.add(u.name)
            stack.append(pred)
    index_of = {node.name: i for i, node in enumerate(graph.nodes)}
    chain.sort(key=lambda n: index_of[n.name])
    return tuple(chain)


def _revalidate_chains(graph: Graph, intervals: dict[Value, LiveInterval],
                       actions: dict[str, PlanAction],
                       cm: PlanCostModel) -> bool:
    """Re-collect every remat chain under the current action set.

    A chain is valid only while its frontier inputs stay resident at the
    restore point; planning a later spill or remat for one of them
    evicts it and silently invalidates the chain.  After every planner
    step the chains are therefore recomputed — extended through the
    evicted tensor's own producer when a bounded chain still exists, or
    reported impossible (``False``) so the step can be reverted.
    """
    for name, a in list(actions.items()):
        if not isinstance(a, RematAction):
            continue
        chain = _collect_chain(graph, a.value, a.remat_before, intervals,
                               actions, cm.max_chain_len)
        if chain is None:
            return False
        if chain != a.chain:
            actions[name] = RematAction(
                value=a.value, drop_after=a.drop_after,
                remat_before=a.remat_before, chain=chain,
                recompute_flops=sum(node_flops(n) for n in chain),
                transient_bytes=sum(n.output.nbytes for n in chain))
    return True


def _candidates(graph: Graph, intervals: dict[Value, LiveInterval],
                uses_by_name: dict[str, list[int]],
                actions: dict[str, PlanAction], peak_index: int,
                cm: PlanCostModel,
                rejected: set[tuple[str, str]]) -> list[PlanAction]:
    """Actions that could relieve the peak at ``peak_index``: tensors
    live across that node but neither defined nor consumed by it."""
    if peak_index < 0:
        return []  # the peak is input binding itself — irreducible
    num_nodes = len(graph.nodes)
    peak_node = graph.nodes[peak_index]
    used_here = {v.name for v in peak_node.inputs}
    out: list[PlanAction] = []
    for v, iv in intervals.items():
        name = v.name
        if (name in actions or not iv.live_at(peak_index)
                or iv.begin == peak_index or name in used_here):
            continue
        uses = uses_by_name.get(name, [])
        touches = [iv.begin] + uses
        prev = max(t for t in touches if t < peak_index)
        later = [u for u in uses if u > peak_index]
        nxt = later[0] if later else num_nodes  # num_nodes = restore at end
        if (name, "spill") not in rejected:
            issue = max(prev + 1, nxt - cm.prefetch_lead)
            if issue > peak_index:
                out.append(SpillAction(value=v, spill_after=prev,
                                       prefetch_issue=issue, next_use=nxt))
        if (name, "remat") not in rejected and iv.begin >= 0 and nxt < num_nodes:
            chain = _collect_chain(graph, v, nxt, intervals, actions,
                                   cm.max_chain_len)
            if chain is not None:
                out.append(RematAction(
                    value=v, drop_after=prev, remat_before=nxt, chain=chain,
                    recompute_flops=sum(node_flops(n) for n in chain),
                    transient_bytes=sum(n.output.nbytes for n in chain)))
    return out


# ---------------------------------------------------------------------------
# the greedy planner
# ---------------------------------------------------------------------------

def plan_memory(graph: Graph, budget_bytes: int | None = None, *,
                cost_model: PlanCostModel | None = None) -> MemoryPlan:
    """Plan ``graph`` to fit ``budget_bytes`` of internal-tensor memory.

    ``budget_bytes=None`` plans nothing (all-keep) and just reports the
    predicted peak — useful for the ``repro plan`` analysis view.
    Raises :class:`InfeasibleBudget` when no action schedule fits.
    """
    graph.validate()
    cm = cost_model or PlanCostModel()
    if budget_bytes is not None and budget_bytes <= 0:
        raise ValueError(f"budget must be positive, got {budget_bytes}")
    intervals = analyze_liveness(graph)
    uses_by_name: dict[str, list[int]] = {}
    for index, node in enumerate(graph.nodes):
        for v in node.inputs:
            uses_by_name.setdefault(v.name, []).append(index)

    _, baseline_peak, _ = simulate_plan(graph, {})
    actions: dict[str, PlanAction] = {}
    rejected: set[tuple[str, str]] = set()

    def score(a: PlanAction) -> tuple:
        # cost per byte relieved; spills win ties (no numeric risk)
        return (a.cost_seconds(cm) / max(a.nbytes, 1),
                0 if isinstance(a, SpillAction) else 1, a.value.name)

    while True:
        planned, peak, peak_index = simulate_plan(graph, actions)
        if budget_bytes is None or peak <= budget_bytes:
            break
        cands = _candidates(graph, intervals, uses_by_name, actions,
                            peak_index, cm, rejected)
        if not cands:
            raise InfeasibleBudget(graph.name, budget_bytes, peak)
        best = min(cands, key=score)
        actions[best.value.name] = best
        if _revalidate_chains(graph, intervals, actions, cm):
            _, new_peak, new_index = simulate_plan(graph, actions)
            # no local relief (e.g. the remat transient re-creates the
            # peak); a same-height peak at a *different* index is kept —
            # that plateau is relieved on the next iteration
            revert = new_peak > peak or (new_peak == peak
                                         and new_index == peak_index)
        else:
            revert = True  # the step broke an existing restore chain
        if revert:
            del actions[best.value.name]
            _revalidate_chains(graph, intervals, actions, cm)
            rejected.add((best.value.name, best.kind))

    # record the keeps: what still makes up the planned peak
    for v, iv in intervals.items():
        if v.name not in actions and iv.live_at(max(peak_index, 0)) \
                and _resident_at(v, max(peak_index, 0), intervals, actions):
            actions[v.name] = KeepAction(value=v)

    ordered = sorted(
        actions.values(),
        key=lambda a: ({"spill": 0, "remat": 1, "keep": 2}[a.kind],
                       -a.nbytes, a.value.name))
    return MemoryPlan(
        graph_name=graph.name, num_nodes=len(graph.nodes),
        budget_bytes=budget_bytes, baseline_peak_bytes=baseline_peak,
        planned_peak_bytes=peak, planned_live=tuple(planned),
        actions=tuple(ordered), cost_model=cm)
