"""Host-side spill store and the double-buffered prefetch worker.

The planner's ``spill`` action moves a cold internal tensor out of the
device-memory pool (the simulated :class:`~repro.runtime.allocator.
TensorAllocator`) into a host-side store, then stages it back in ahead
of the next consumer.  :class:`SpillStore` is that store: an in-memory
table by default, or a directory of ``.npy`` files when constructed
with ``directory=`` (lossless round-trip either way, so planned runs
stay bitwise-identical to unplanned ones).

:class:`PrefetchWorker` is a single background thread that services
fetches asynchronously: the executor *issues* a fetch one node early
(the plan's prefetch lead) and *waits* on it right before the consumer
runs, so the transfer overlaps the preceding node's compute — the
double-buffering the plan's cost model assumes.

Failure semantics (exercised by the failure-injection tests):

- a failed **spill write** is non-fatal — the executor keeps the tensor
  resident and skips the matching prefetch; the request stays correct,
  the budget is best-effort;
- a failed **async prefetch** is retried once synchronously (transient
  I/O); if the retry also fails the data is gone and a typed
  :class:`SpillStoreError` surfaces, because silently wrong outputs are
  worse than a failed request.
"""

from __future__ import annotations

import io
import queue
import re
import threading
from pathlib import Path

import numpy as np

__all__ = ["SpillStore", "SpillStoreError", "PrefetchWorker"]


class SpillStoreError(RuntimeError):
    """Typed I/O failure of the spill store (write, read, or lost data)."""


def _safe_filename(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]", "_", name)


class SpillStore:
    """Keyed tensor store on the host side of the spill boundary.

    Parameters
    ----------
    directory:
        When given, tensors are serialized to ``<directory>/<name>.npy``
        via ``np.save``/``np.load`` (created on demand).  The default
        ``None`` keeps arrays in an in-process table — the simulated
        analogue of pinned host RAM.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._mem: dict[str, np.ndarray] = {}
        self._sizes: dict[str, int] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._sizes)

    @property
    def held_bytes(self) -> int:
        """Bytes currently parked in the store."""
        with self._lock:
            return sum(self._sizes.values())

    def _path(self, name: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{_safe_filename(name)}.npy"

    def put(self, name: str, array: np.ndarray) -> int:
        """Write one tensor; returns the bytes written.

        Raises :class:`SpillStoreError` on any I/O failure — the caller
        falls back to keeping the tensor resident.
        """
        try:
            if self.directory is not None:
                self.directory.mkdir(parents=True, exist_ok=True)
                with open(self._path(name), "wb") as fh:
                    np.save(fh, array, allow_pickle=False)
            else:
                self._mem[name] = array
        except OSError as exc:
            raise SpillStoreError(f"spill write of {name!r} failed: {exc}") from exc
        with self._lock:
            self._sizes[name] = int(array.nbytes)
        return int(array.nbytes)

    def fetch(self, name: str) -> np.ndarray:
        """Read one tensor back (it stays in the store until discarded)."""
        with self._lock:
            known = name in self._sizes
        if not known:
            raise SpillStoreError(f"tensor {name!r} was never spilled")
        try:
            if self.directory is not None:
                with open(self._path(name), "rb") as fh:
                    return np.load(fh, allow_pickle=False)
            return self._mem[name]
        except (OSError, KeyError, ValueError) as exc:
            raise SpillStoreError(f"prefetch of {name!r} failed: {exc}") from exc

    def discard(self, name: str) -> None:
        """Drop one tensor (idempotent)."""
        with self._lock:
            self._sizes.pop(name, None)
        self._mem.pop(name, None)
        if self.directory is not None:
            try:
                self._path(name).unlink(missing_ok=True)
            except OSError:
                pass

    def clear(self) -> None:
        for name in list(self._sizes):
            self.discard(name)


class _Pending:
    __slots__ = ("event", "array", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.array: np.ndarray | None = None
        self.error: Exception | None = None


_STOP = object()


class PrefetchWorker:
    """One background thread fetching spilled tensors ahead of use.

    ``issue(name)`` enqueues an asynchronous fetch; ``wait(name)``
    blocks until that fetch lands and returns the array (or re-raises
    the fetch error for the caller's synchronous retry).  One issued
    fetch can be in flight while the executor computes the preceding
    node — the double buffer.
    """

    def __init__(self, store: SpillStore) -> None:
        self.store = store
        self._queue: queue.Queue = queue.Queue()
        self._pending: dict[str, _Pending] = {}
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._run, name="repro-prefetch", daemon=True)
            self._thread.start()

    def _run(self) -> None:
        while True:
            try:
                # self-terminate when idle so a run abandoned by an
                # exception cannot leak threads indefinitely; issue()
                # restarts the thread on demand
                item = self._queue.get(timeout=30.0)
            except queue.Empty:
                return
            if item is _STOP:
                return
            name, pending = item
            try:
                pending.array = self.store.fetch(name)
            except Exception as exc:  # surfaced via wait()
                pending.error = exc
            finally:
                pending.event.set()

    def issue(self, name: str) -> None:
        pending = _Pending()
        with self._lock:
            self._pending[name] = pending
        self._ensure_thread()
        self._queue.put((name, pending))

    def cancel(self, name: str) -> None:
        """Forget an issued fetch (e.g. after a failed spill write)."""
        with self._lock:
            self._pending.pop(name, None)

    def wait(self, name: str) -> np.ndarray:
        with self._lock:
            pending = self._pending.pop(name, None)
        if pending is None:
            raise SpillStoreError(f"no prefetch issued for {name!r}")
        pending.event.wait()
        if pending.error is not None:
            raise SpillStoreError(
                f"async prefetch of {name!r} failed") from pending.error
        assert pending.array is not None
        return pending.array

    def close(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            self._queue.put(_STOP)
            self._thread.join(timeout=5.0)
        self._thread = None
        with self._lock:
            self._pending.clear()
