"""Budget grammar for ``--budget`` flags.

A budget names an internal-tensor byte ceiling.  Three spellings are
accepted, case-insensitively:

- plain integers, optionally suffixed ``B``: ``1048576``, ``1048576B``;
- binary / decimal size suffixes, with an optional fractional part:
  ``64KiB``, ``1.5MiB``, ``2GiB`` (powers of 1024) and ``64KB``,
  ``1.5MB``, ``2GB`` (powers of 1000);
- a percentage of a reference peak: ``60%`` means 60% of the
  *unplanned* predicted peak of the graph being planned (the caller
  supplies the reference).

The parse always floors to whole bytes: a budget is a ceiling, so
rounding up could admit a plan that exceeds what the user asked for.
"""

from __future__ import annotations

import re

__all__ = ["parse_budget", "format_bytes", "BudgetSyntaxError"]

_UNITS = {
    "": 1,
    "b": 1,
    "kib": 1024,
    "mib": 1024 ** 2,
    "gib": 1024 ** 3,
    "kb": 1000,
    "mb": 1000 ** 2,
    "gb": 1000 ** 3,
}

_PATTERN = re.compile(
    r"^\s*(?P<number>\d+(?:\.\d+)?)\s*(?P<unit>%|[a-z]*)\s*$", re.IGNORECASE)


class BudgetSyntaxError(ValueError):
    """Raised when a budget string does not parse."""


def parse_budget(text: str | int, *, reference: int | None = None) -> int:
    """Parse a budget spec into whole bytes.

    ``reference`` is the unplanned predicted peak used to resolve
    percentage budgets; passing a percentage without one is an error.
    """
    if isinstance(text, int):
        if text <= 0:
            raise BudgetSyntaxError(f"budget must be positive, got {text}")
        return text
    m = _PATTERN.match(text)
    if not m:
        raise BudgetSyntaxError(
            f"cannot parse budget {text!r}; expected bytes, a KiB/MiB/GiB/"
            f"KB/MB/GB size, or a percentage like '60%'")
    number = float(m.group("number"))
    unit = m.group("unit").lower()
    if unit == "%":
        if reference is None:
            raise BudgetSyntaxError(
                f"percentage budget {text!r} needs a reference peak")
        nbytes = int(number / 100.0 * reference)
    else:
        try:
            nbytes = int(number * _UNITS[unit])
        except KeyError:
            raise BudgetSyntaxError(
                f"unknown budget unit {m.group('unit')!r} in {text!r}") from None
    if nbytes <= 0:
        raise BudgetSyntaxError(f"budget {text!r} resolves to {nbytes} bytes")
    return nbytes


def format_bytes(nbytes: int) -> str:
    """Human-readable binary size used by plan tables and findings."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    return f"{int(nbytes)} B"  # pragma: no cover - unreachable
