"""Command-line interface: ``python -m repro <command>``.

Commands
--------
models
    List the benchmark zoo.
inspect MODEL|FILE.npz
    Print a model's IR, parameter counts and static memory estimates.
optimize MODEL|FILE.npz [-o OUT.npz]
    Decompose (Tucker/CP/TT) + TeMCO-optimize; print the report and
    optionally save the optimized graph.
run MODEL|FILE.npz
    Execute one inference on synthetic input; print the memory profile
    and wall-clock time.  With ``--tuned``, execute the autotuned
    compiled plan from the tuning cache (tuning + compiling first on a
    miss unless ``--no-tune``).  With ``--budget BYTES`` the
    :mod:`repro.plan` planner computes a spill/prefetch/remat schedule
    and the runtime enforces it — outputs stay bitwise identical while
    the measured peak lands on the plan's simulated peak.
plan MODEL|FILE.npz [--budget BYTES] [--optimize]
    Compute (without enforcing) the budget-constrained memory plan:
    the per-tensor action table, predicted peak, working-set floor and
    cost-model overhead; ``--json`` for the full machine-readable
    plan.  Exits non-zero with the residual when the budget is
    infeasible.  See ``docs/memory_planning.md``.
tune MODEL|FILE.npz
    Autotune the fused kernels' ``(block_size, spatial_tile)`` and
    persist the chosen tiles plus the compiled plan in the tuning
    cache; a second invocation is a cache hit and does no work.
trace MODEL|FILE.npz
    Decompose + optimize + run one inference with full tracing; write a
    Chrome trace (open in Perfetto / ``chrome://tracing``) carrying the
    compiler's decision log, per-node executor spans and the live-bytes
    counter track.
profile MODEL|FILE.npz
    Hot-path profiler: run a few traced inferences (decompose +
    optimize first unless ``--no-optimize``) and rank op types and
    layers by self time, with bytes moved, analytic FLOPs, arithmetic
    intensity and fused scratch per row.  ``--flamegraph PATH`` writes
    collapsed-stack input for ``flamegraph.pl`` / speedscope;
    ``--json`` for machine-readable output.
serve MODEL|FILE.npz
    Run the dynamic-batching inference server with a JSON/HTTP
    frontend (``POST /infer``, ``GET /healthz``, ``GET /stats``,
    ``GET /metrics``, ``GET /slo``).  ``--tuned`` serves the autotuned
    compiled plan from the tuning cache; ``--trace PATH`` records
    request-lifecycle traces (admission spans, batch fan-in arrows,
    per-request waterfalls); ``--slo SPEC`` attaches burn-rate
    monitored objectives.  SIGTERM/SIGINT trigger a graceful drain:
    ``/healthz`` flips to 503, in-flight requests finish, then the
    process exits 0.  See ``docs/serving.md``.
fleet MODEL|FILE.npz
    Run a multi-replica fleet behind one HTTP frontend: ``--replicas
    K`` servers share ``--host-budget`` (each planned to ``budget/K``
    by the repro.plan planner), fronted by the least-outstanding
    router with hedged retries and outlier ejection.  ``--fault
    REPLICA:KIND:AFTER`` injects a deterministic kill/stall/slow for
    failover demos.  SIGTERM/SIGINT drain the whole fleet gracefully.
    See ``docs/fleet.md``.
loadgen MODEL|FILE.npz
    Start an in-process server and drive it with an open- or
    closed-loop load generator; reports throughput and p50/p95/p99
    latency (``--json`` for machine-readable output).  ``--fleet K``
    drives a K-replica fleet through the router instead of a single
    server (with ``--host-budget`` / ``--fault`` as above — the CI
    failover smoke kills a replica mid-run and asserts zero errors);
    ``--metrics-out PATH`` dumps the end-of-run Prometheus exposition.
    ``--slo SPEC`` (repeatable; ``availability:0.99`` or
    ``latency:50:0.95``) evaluates objectives over the run and
    **exits non-zero on violation** — the CI gate; ``--trace PATH``
    captures the full serving trace.
memcheck [MODEL ...]
    Memory conformance audit: run every requested zoo model (original
    *and* TeMCO-optimized) with the allocation ledger on and cross-check
    measured peak vs the liveness prediction, the arena plan, and the
    ledger's own replay.  Exits non-zero on any mismatch.  With
    ``--budget BYTES``, switches to budgeted-run conformance instead:
    plan + enforce each model and check measured peak ≤ budget, peak ==
    the plan's simulation, bitwise-identical outputs and a clean
    spill/remat-tagged ledger.  See ``docs/memory_auditing.md``.
bench {fig4,fig10,fig11,fig12}
    Regenerate one paper figure as a text table.
bench [--json] [--name N] / bench --compare [BASELINE]
    With no figure: measure the bench suite (per-model peak bytes,
    reduction %, latency p50/p95/p99).  ``--json`` writes
    ``BENCH_<name>.json``; ``--compare`` re-measures with the
    baseline's own config and fails on peak regressions (the CI gate
    against the committed ``BENCH_baseline.json``).

``optimize``, ``run``, ``bench``, ``serve`` and ``loadgen`` also
accept ``--trace PATH`` (dump a Chrome trace / JSONL of the whole
command) and ``--log-level`` (wire stdlib logging for the ``repro``
hierarchy), plus ``--tuned`` /
``--no-tune`` / ``--cache-dir DIR`` to reuse ``repro tune`` results
(see ``docs/tuning.md``).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys
import threading
import time
from pathlib import Path

import numpy as np

from .bench import (DEFAULT_MODELS, PAPER_LABELS, BenchConfig, collect_bench,
                    compare_bench, figure4, figure10, figure11, figure12,
                    format_comparison, format_table,
                    internal_reduction_geomean, load_bench, overhead_ratios,
                    trace_figures, use_tuned_fusion, write_bench)
from .core import (TeMCOConfig, estimate_peak_floor, estimate_peak_internal,
                   optimize)
from .decompose import DecompositionConfig, decompose_graph
from .fleet import FaultPolicy, PoolConfig, ReplicaPool, Router
from .ir import (Graph, format_graph, load_graph, save_dot, save_graph,
                 summarize_graph)
from .models import EXTRA_MODELS, MODEL_ZOO, build_extra, build_model
from .obs import (FleetView, SLOMonitor, Tracer, configure_logging,
                  parse_slos, profile_tracer, render_dashboard, use_tracer,
                  write_collapsed_stacks, write_diag_bundle, write_trace)
from .plan import (BudgetSyntaxError, InfeasibleBudget, PlanCostModel,
                   format_bytes, parse_budget, plan_memory)
from .runtime import (InferenceSession, metrics_markdown, plan_arena,
                      profile_markdown, timeline_csv)
from .serve import (InferenceServer, LoadgenConfig, ServerConfig, resolve_plan,
                    run_loadgen, serve_http)
from .tune import (TuneCache, TuneConfig, cached_overrides, load_cached_plan,
                   tune_model)

__all__ = ["main", "build_parser"]

MIB = 1024 * 1024


def _obs_wrap(fn):
    """Honour ``--log-level`` / ``--trace`` around a command function."""
    def wrapped(args) -> int:
        if getattr(args, "log_level", None):
            configure_logging(args.log_level)
        trace_path = getattr(args, "trace", None)
        if not trace_path:
            return fn(args)
        tracer = Tracer()
        with use_tracer(tracer):
            rc = fn(args)
        path = write_trace(tracer, trace_path)
        # stderr: commands with --json keep stdout machine-parseable
        print(f"wrote trace ({len(tracer.spans)} spans, "
              f"{len(tracer.decisions)} decisions) to {path}",
              file=sys.stderr)
        return rc
    return wrapped


def _load_model(spec: str, batch: int, hw: int | None, seed: int) -> Graph:
    if spec.endswith(".npz"):
        return load_graph(spec)
    if spec in EXTRA_MODELS:
        return build_extra(spec, batch=batch, hw=hw, seed=seed)
    return build_model(spec, batch=batch, hw=hw, seed=seed)


def _cmd_models(args) -> int:
    rows = [[name, s.family, s.task, s.default_hw,
             "yes" if s.has_skip_connections else "no"]
            for name, s in MODEL_ZOO.items()]
    print(format_table(["model", "family", "task", "default hw", "skips"],
                       rows, title="benchmark model zoo (paper §4.1)"))
    extras = [[name, s.family, s.task, s.default_hw,
               "yes" if s.has_skip_connections else "no"]
              for name, s in EXTRA_MODELS.items()]
    print()
    print(format_table(["model", "family", "task", "default hw", "skips"],
                       extras, title="extra variants (not in the paper's set)"))
    return 0


def _cmd_export(args) -> int:
    graph = _load_model(args.model, args.batch, args.hw, args.seed)
    if args.what == "dot":
        save_dot(graph, args.output)
    elif args.what == "timeline":
        rng = np.random.default_rng(args.seed)
        inputs = {v.name: rng.normal(size=v.shape).astype(v.dtype.np)
                  for v in graph.inputs}
        profile = InferenceSession(graph).run(inputs).memory
        Path(args.output).write_text(timeline_csv(profile))
    else:  # report
        rng = np.random.default_rng(args.seed)
        inputs = {v.name: rng.normal(size=v.shape).astype(v.dtype.np)
                  for v in graph.inputs}
        profile = InferenceSession(graph).run(inputs).memory
        Path(args.output).write_text(profile_markdown(profile,
                                                      title=graph.name))
    print(f"wrote {args.what} for {graph.name!r} to {args.output}")
    return 0


def _cmd_inspect(args) -> int:
    graph = _load_model(args.model, args.batch, args.hw, args.seed)
    print(summarize_graph(graph))
    print(f"estimated peak internal: {estimate_peak_internal(graph) / MIB:.2f} MiB")
    plan = plan_arena(graph)
    print(f"static arena: {plan.arena_bytes / MIB:.2f} MiB "
          f"(fragmentation {plan.fragmentation:.1%})")
    if args.ir:
        print()
        print(format_graph(graph))
    return 0


def _tuned_overrides(graph, args, decomposition: DecompositionConfig,
                     temco: TeMCOConfig) -> dict | None:
    """Resolve ``--tuned`` to fusion site overrides (tuning on a miss
    unless ``--no-tune``); None means proceed untuned."""
    cache = TuneCache(args.cache_dir)
    overrides = cached_overrides(graph, cache=cache,
                                 decomposition=decomposition, temco=temco)
    if overrides is not None:
        print(f"tune cache hit: {len(overrides)} tuned fusion sites")
        return overrides
    if args.no_tune:
        print("tune cache miss (--no-tune): using default tiles; "
              f"run `repro tune {args.model}` to populate the cache")
        return None
    print("tune cache miss: tuning now (use --no-tune to skip)")
    _plan, record, _hit = tune_model(graph, cache=cache,
                                     decomposition=decomposition, temco=temco)
    return {} if record.fell_back_to_default else record.overrides


def _cmd_optimize(args) -> int:
    graph = _load_model(args.model, args.batch, args.hw, args.seed)
    decomposition = DecompositionConfig(
        method=args.method, ratio=args.ratio, seed=args.seed,
        rank_policy=args.rank_policy, energy=args.energy)
    temco = TeMCOConfig(concat_strategy=args.concat_strategy)
    tuner = None
    if args.tuned:
        overrides = _tuned_overrides(graph, args, decomposition, temco)
        if overrides:
            tuner = lambda _g: overrides  # noqa: E731
    decomposed = decompose_graph(graph, decomposition)
    optimized, report = optimize(decomposed, temco, tuner=tuner)
    print(f"original:  {summarize_graph(graph)}")
    print(f"decomposed: {summarize_graph(decomposed)}")
    print(f"optimized:  {summarize_graph(optimized)}")
    print()
    print(report.summary())
    orig_peak = estimate_peak_internal(graph)
    print(f"internal peak vs original: {orig_peak / MIB:.2f} MiB -> "
          f"{report.peak_after / MIB:.2f} MiB "
          f"({1 - report.peak_after / orig_peak:.1%} reduction)")
    if args.output:
        save_graph(optimized, args.output)
        print(f"saved optimized graph to {args.output}")
    return 0


def _budget_plan(graph: Graph, budget_spec: str):
    """Parse a ``--budget`` spec against ``graph``'s predicted peak and
    plan it.  Returns ``(memory_plan, reference_peak_bytes)``; raises
    :class:`~repro.plan.InfeasibleBudget` when no schedule fits."""
    reference = estimate_peak_internal(graph)
    budget = parse_budget(budget_spec, reference=reference)
    return plan_memory(graph, budget), reference


def _print_infeasible(command: str, graph: Graph,
                      exc: InfeasibleBudget) -> None:
    print(f"{command}: {exc}", file=sys.stderr)
    print(f"{command}: the irreducible working-set floor of "
          f"{graph.name!r} is {format_bytes(estimate_peak_floor(graph))} — "
          f"budgets below it can never fit", file=sys.stderr)


def _cmd_run(args) -> int:
    graph = _load_model(args.model, args.batch, args.hw, args.seed)
    target = graph
    if args.tuned:
        cache = TuneCache(args.cache_dir)
        decomposition = DecompositionConfig(method=args.method,
                                            ratio=args.ratio, seed=args.seed)
        cached = load_cached_plan(graph, cache=cache,
                                  decomposition=decomposition)
        if cached is not None:
            target, record = cached
            print(f"tune cache hit: executing cached compiled plan "
                  f"(key {record.key}, {len(record.sites)} tuned sites)")
        elif args.no_tune:
            print(f"tune cache miss (--no-tune): running the raw model; "
                  f"run `repro tune {args.model}` to populate the cache")
        else:
            print("tune cache miss: tuning now (use --no-tune to skip)")
            target, record, _hit = tune_model(
                graph, cache=cache, decomposition=decomposition)
            print(f"tuned and cached {len(record.sites)} sites "
                  f"(key {record.key}, {record.total_trials} trials)")
    memory_plan = None
    if args.budget:
        try:
            memory_plan, reference = _budget_plan(target, args.budget)
        except InfeasibleBudget as exc:
            _print_infeasible("run", target, exc)
            return 1
        print(f"memory plan: {memory_plan.summary()} "
              f"(unplanned peak {format_bytes(reference)})")
    rng = np.random.default_rng(args.seed)
    inputs = {v.name: rng.normal(size=v.shape).astype(v.dtype.np)
              for v in target.inputs}
    session = InferenceSession(target, memory_plan=memory_plan)
    timing = session.time_inference(inputs, warmup=1, repeats=args.repeats)
    result = session.run(inputs)
    print(f"output shapes: "
          f"{ {k: v.shape for k, v in result.outputs.items()} }")
    print(result.memory.summary())
    if memory_plan is not None:
        stats = result.memory.plan_stats
        measured = result.memory.peak_internal_bytes
        ok = measured <= memory_plan.budget_bytes
        print(f"budgeted peak: measured {format_bytes(measured)}, planned "
              f"{format_bytes(memory_plan.planned_peak_bytes)}, budget "
              f"{format_bytes(memory_plan.budget_bytes)} — "
              f"{'within budget' if ok else 'OVER BUDGET'}; "
              f"{stats.spills} spill(s) "
              f"({format_bytes(stats.spilled_bytes)} spilled), "
              f"{stats.remats} remat(s)")
        if not ok:
            return 1
    print(f"median wall-clock: {timing.median * 1e3:.1f} ms "
          f"over {args.repeats} runs")
    print(f"latency percentiles: p50 {timing.p50 * 1e3:.1f} ms, "
          f"p95 {timing.p95 * 1e3:.1f} ms, p99 {timing.p99 * 1e3:.1f} ms")
    return 0


def _cmd_plan(args) -> int:
    """``repro plan``: compute and display a budget-constrained memory
    plan without (necessarily) running it."""
    graph = _load_model(args.model, args.batch, args.hw, args.seed)
    target = graph
    if args.optimize:
        decomposed = decompose_graph(graph, DecompositionConfig(
            method=args.method, ratio=args.ratio, seed=args.seed))
        target, _report = optimize(decomposed)
    cost_model = PlanCostModel(
        spill_bandwidth_bytes_per_s=args.spill_gbps * 1e9,
        recompute_flops_per_s=args.compute_gflops * 1e9)
    baseline = estimate_peak_internal(target)
    floor = estimate_peak_floor(target)
    budget = (parse_budget(args.budget, reference=baseline)
              if args.budget else None)
    try:
        mplan = plan_memory(target, budget, cost_model=cost_model)
    except InfeasibleBudget as exc:
        if args.json:
            print(json.dumps(
                {"graph": target.name, "feasible": False,
                 "budget_bytes": budget, "baseline_peak_bytes": baseline,
                 "floor_bytes": floor,
                 "best_peak_bytes": exc.predicted_peak_bytes,
                 "residual_bytes": exc.residual_bytes},
                indent=1, sort_keys=True))
        else:
            _print_infeasible("plan", target, exc)
        return 1
    if args.json:
        doc = mplan.to_dict()
        doc["floor_bytes"] = floor
        doc["feasible"] = mplan.within_budget
        print(json.dumps(doc, indent=1, sort_keys=True))
        return 0
    rows = []
    for action in mplan.actions:
        if action.kind == "spill":
            use = ("output" if action.next_use >= mplan.num_nodes
                   else f"use@{action.next_use}")
            schedule = (f"spill@{action.spill_after} "
                        f"prefetch@{action.prefetch_issue} {use}")
        elif action.kind == "remat":
            schedule = (f"drop@{action.drop_after} "
                        f"remat@{action.remat_before} "
                        f"chain={len(action.chain)}")
        else:
            schedule = "resident at peak"
        rows.append([action.kind, action.value.name,
                     f"{action.nbytes / 1024:.1f}",
                     f"{action.cost_seconds(cost_model) * 1e6:.1f}",
                     schedule])
    print(format_table(
        ["action", "tensor", "KiB", "cost us", "schedule"], rows,
        title=f"memory plan for {target.name!r} ({len(target.nodes)} nodes)"))
    print()
    print(f"baseline peak: {format_bytes(baseline)}   "
          f"floor: {format_bytes(floor)}")
    line = f"planned peak:  {format_bytes(mplan.planned_peak_bytes)}"
    if budget is not None:
        line += (f"   budget: {format_bytes(budget)} "
                 f"({'fits' if mplan.within_budget else 'DOES NOT FIT'})")
    print(line)
    print(f"relief: {format_bytes(mplan.relief_bytes)} via "
          f"{len(mplan.spills)} spill(s) + {len(mplan.remats)} remat(s); "
          f"predicted overhead "
          f"{mplan.predicted_overhead_seconds * 1e3:.3f} ms")
    return 0


def _serve_plan(args) -> "Graph":
    """Build the model and swap in the tuned compiled plan if asked."""
    graph = _load_model(args.model, args.batch, args.hw, args.seed)
    plan, hit = resolve_plan(graph, tuned=args.tuned,
                             cache_dir=args.cache_dir, method=args.method,
                             ratio=args.ratio, seed=args.seed)
    if args.tuned:
        print("tune cache hit: serving the cached compiled plan" if hit
              else "tune cache miss: serving the raw graph "
                   f"(run `repro tune {args.model}` to populate the cache)")
    return plan


def _server_config(args) -> ServerConfig:
    return ServerConfig(
        num_workers=args.workers, max_queue=args.max_queue,
        max_wait_s=args.max_wait_ms / 1e3,
        default_deadline_s=(args.deadline_ms / 1e3
                            if args.deadline_ms is not None else None),
        batching=not args.no_batching)


def _slo_monitor(args) -> SLOMonitor | None:
    specs = getattr(args, "slo", None)
    return SLOMonitor(parse_slos(specs)) if specs else None


def _serve_memory_plan(plan: Graph, args):
    """Resolve ``--budget`` for the serving graph; ``(ok, plan|None)``."""
    if not getattr(args, "budget", None):
        return True, None
    try:
        mplan, reference = _budget_plan(plan, args.budget)
    except InfeasibleBudget as exc:
        _print_infeasible("serve", plan, exc)
        return False, None
    # stderr: loadgen --json keeps stdout machine-parseable
    print(f"memory plan: {mplan.summary()} "
          f"(unplanned peak {format_bytes(reference)})", file=sys.stderr)
    return True, mplan


def _trap_signals(stop: threading.Event) -> dict:
    """Route SIGTERM/SIGINT to a graceful-drain event.  Only touches
    handlers on the main thread (elsewhere — e.g. tests calling
    ``main()`` from a worker — signals stay as they were)."""
    if threading.current_thread() is not threading.main_thread():
        return {}
    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, lambda *_: stop.set())
        except (ValueError, OSError):  # pragma: no cover — exotic platforms
            pass
    return previous


def _restore_signals(previous: dict) -> None:
    for sig, handler in previous.items():
        signal.signal(sig, handler)


def _wait_for_stop(stop: threading.Event, duration: float | None) -> None:
    """Block until ``stop`` is set or ``duration`` elapses.  Waits in
    short slices: Python-level signal handlers only run when the main
    thread re-enters the interpreter, and a signal delivered on another
    thread never interrupts one long C-level ``Event.wait``."""
    deadline = None if duration is None else time.monotonic() + duration
    while not stop.is_set():
        remaining = (None if deadline is None
                     else deadline - time.monotonic())
        if remaining is not None and remaining <= 0:
            return
        if stop.wait(0.1 if remaining is None else min(0.1, remaining)):
            return


def _cmd_serve(args) -> int:
    plan = _serve_plan(args)
    ok, mplan = _serve_memory_plan(plan, args)
    if not ok:
        return 1
    slo = _slo_monitor(args)
    stop = threading.Event()
    previous = _trap_signals(stop)
    try:
        with InferenceServer(plan, _server_config(args), slo=slo,
                             memory_plan=mplan) as server:
            # the fleet view powers GET /fleetz and `repro top`; it only
            # reads the server, so serving behaviour is unchanged
            server.view = FleetView(server)
            with server.view, serve_http(server, host=args.host,
                                         port=args.port) as frontend:
                host, port = frontend.address
                print(f"serving {plan.name!r} on http://{host}:{port} "
                      f"({args.workers} worker(s), graph batch "
                      f"{server.graph_batch}, queue bound {args.max_queue})")
                print("endpoints: POST /infer, GET /healthz, GET /stats, "
                      "GET /metrics, GET /fleetz"
                      + (", GET /slo" if slo else ""))
                if slo:
                    for objective in slo.objectives:
                        print(f"slo: {objective.describe()}")
                try:
                    _wait_for_stop(stop, args.duration)
                except KeyboardInterrupt:
                    pass
                # drain with the frontend still up: /healthz answers
                # 503 while in-flight requests finish, so a balancer
                # stops sending traffic before the socket goes away
                print("draining: rejecting new requests, finishing "
                      "in-flight work (healthz now 503)", file=sys.stderr)
                if not server.drain(args.drain_timeout):
                    print(f"drain timed out after {args.drain_timeout} s; "
                          f"leftover requests rejected", file=sys.stderr)
            print(metrics_markdown(server.metrics,
                                   title=f"{plan.name} serving metrics"))
            if slo:
                for status in slo.evaluate():
                    print(status.summary())
    finally:
        _restore_signals(previous)
    return 0


def _build_router(plan: Graph, args, *, replicas: int,
                  slo: SLOMonitor | None = None) -> Router:
    """A fleet router per the CLI flags (raises
    :class:`~repro.plan.InfeasibleBudget` when ``--host-budget`` has
    no feasible per-replica plan)."""
    fault = (FaultPolicy.parse(args.fault)
             if getattr(args, "fault", None) else None)
    pool = ReplicaPool(plan, PoolConfig(
        replicas=replicas, host_budget=getattr(args, "host_budget", None),
        server=_server_config(args)))
    return Router(pool, slo=slo, fault=fault)


def _cmd_fleet(args) -> int:
    plan = _serve_plan(args)
    if getattr(args, "budget", None):
        print("fleet: use --host-budget (split across replicas) instead "
              "of --budget", file=sys.stderr)
        return 2
    slo = _slo_monitor(args)
    try:
        router = _build_router(plan, args, replicas=args.replicas, slo=slo)
    except InfeasibleBudget as exc:
        _print_infeasible("fleet", plan, exc)
        return 1
    stop = threading.Event()
    previous = _trap_signals(stop)
    try:
        with router:
            router.view = FleetView(router)
            with router.view, serve_http(router, host=args.host,
                                         port=args.port) as frontend:
                host, port = frontend.address
                pool = router.pool
                budget_note = ""
                if pool.memory_plan is not None:
                    budget_note = (
                        f", host budget "
                        f"{format_bytes(pool.host_budget_bytes)} "
                        f"({format_bytes(pool.memory_plan.budget_bytes or 0)}"
                        f" per replica)")
                print(f"fleet serving {plan.name!r} on http://{host}:{port} "
                      f"({args.replicas} replica(s) x {args.workers} "
                      f"worker(s){budget_note})")
                print("endpoints: POST /infer, GET /healthz, GET /stats, "
                      "GET /metrics, GET /fleetz"
                      + (", GET /slo" if slo else ""))
                if router.fault is not None:
                    print(f"fault armed: {router.fault.describe()}")
                try:
                    _wait_for_stop(stop, args.duration)
                except KeyboardInterrupt:
                    pass
                print("draining fleet: finishing in-flight requests",
                      file=sys.stderr)
                if not router.drain(args.drain_timeout):
                    print(f"fleet drain timed out after "
                          f"{args.drain_timeout} s", file=sys.stderr)
            print(metrics_markdown(router.metrics,
                                   title=f"{plan.name} fleet metrics"))
    finally:
        _restore_signals(previous)
    return 0


def _cmd_loadgen(args) -> int:
    plan = _serve_plan(args)
    config = LoadgenConfig(
        mode=args.mode, requests=args.requests, concurrency=args.concurrency,
        rate=args.rate, samples=args.samples,
        deadline_s=(args.deadline_ms / 1e3
                    if args.deadline_ms is not None else None),
        seed=args.seed)
    slo = _slo_monitor(args)
    if args.fleet:
        if getattr(args, "budget", None):
            print("loadgen --fleet: use --host-budget (split across "
                  "replicas) instead of --budget", file=sys.stderr)
            return 2
        try:
            backend = _build_router(plan, args, replicas=args.fleet, slo=slo)
        except InfeasibleBudget as exc:
            _print_infeasible("loadgen", plan, exc)
            return 1
    else:
        ok, mplan = _serve_memory_plan(plan, args)
        if not ok:
            return 1
        backend = InferenceServer(plan, _server_config(args), slo=slo,
                                  memory_plan=mplan)
    detect = args.detect_anomalies or args.fail_on_anomaly
    anomalies: list[dict] = []
    with backend:
        view = None
        if detect:
            # scrape fast so the rolling store sees the run as it
            # happens — the detectors need in-flight history, not just
            # the end-of-run totals
            view = FleetView(backend, interval_s=0.2)
            backend.view = view
            view.start()
        report = run_loadgen(backend, config)
        if view is not None:
            view.scraper.scrape_once()  # final sample + detector pass
            view.stop()
            anomalies = [a.to_dict() for a in view.monitor.findings()]
        stats = backend.stats()
        if args.metrics_out:
            Path(args.metrics_out).write_text(backend.metrics_text())
            print(f"wrote Prometheus metrics to {args.metrics_out}",
                  file=sys.stderr)
    # errors are always fatal; an unhealthy SLO is fatal when asked
    # for, and so are anomaly findings under --fail-on-anomaly
    rc = 1 if report.errors or not report.slo_ok else 0
    if args.fail_on_anomaly and anomalies:
        rc = 1
    if args.json:
        doc = report.to_dict()
        doc["server"] = stats
        if detect:
            doc["anomalies"] = anomalies
        print(json.dumps(doc, indent=2, sort_keys=True))
        return rc
    print(report.summary())
    print()
    rows = [[name, f"{value:g}"] for name, value in stats.items()
            if name.startswith(("serve.", "fleet.", "slo."))]
    print(format_table(["metric", "value"], rows,
                       title=f"{plan.name} server metrics"))
    for a in anomalies:
        print(f"anomaly [{a['severity']}] {a['kind']} {a['subject']}: "
              f"{a['message']}")
    if rc and not report.slo_ok:
        print("\nSLO VIOLATED — failing (see the slo lines above)")
    if args.fail_on_anomaly and anomalies:
        print("\nANOMALY DETECTED — failing (--fail-on-anomaly)")
    return rc


def _cmd_top(args) -> int:
    """``repro top``: live dashboard over a serving fleet's /fleetz."""
    from urllib.error import URLError
    from urllib.request import urlopen

    url = args.url or f"http://{args.host}:{args.port}/fleetz"
    once = args.once or args.json
    color = sys.stdout.isatty() and not args.no_color

    def fetch() -> dict:
        with urlopen(url, timeout=args.timeout) as resp:
            return json.loads(resp.read())

    try:
        while True:
            try:
                doc = fetch()
            except (URLError, OSError, ValueError) as exc:
                print(f"top: cannot fetch {url}: {exc}", file=sys.stderr)
                return 1
            if args.json:
                print(json.dumps(doc, indent=1, sort_keys=True))
            else:
                if not once:
                    # clear + home: full repaint each frame, no curses
                    sys.stdout.write("\x1b[2J\x1b[H")
                print(render_dashboard(doc, color=color))
                sys.stdout.flush()
            if once:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_diag(args) -> int:
    """``repro diag``: capture a diagnostic snapshot bundle in-process.

    Builds the requested backend (single server, or a fleet with
    ``--replicas``), drives a little traffic under a tracer so the
    rolling store / histograms / stitched trace have content, then
    tars up the whole observability surface via
    :func:`repro.obs.write_diag_bundle`.
    """
    plan = _serve_plan(args)
    slo = _slo_monitor(args)
    tracer = Tracer()
    with use_tracer(tracer):
        if args.replicas:
            if getattr(args, "budget", None):
                print("diag: use --host-budget (split across replicas) "
                      "instead of --budget", file=sys.stderr)
                return 2
            try:
                backend = _build_router(plan, args, replicas=args.replicas,
                                        slo=slo)
            except InfeasibleBudget as exc:
                _print_infeasible("diag", plan, exc)
                return 1
        else:
            ok, mplan = _serve_memory_plan(plan, args)
            if not ok:
                return 1
            backend = InferenceServer(plan, _server_config(args), slo=slo,
                                      memory_plan=mplan)
        rng = np.random.default_rng(args.seed)
        inputs = {v.name: rng.normal(size=v.shape).astype(v.dtype.np)
                  for v in backend.graph.inputs}
        with backend:
            view = FleetView(backend, interval_s=0.1)
            backend.view = view
            with view:
                # two waves with a gap so the scraper catches the
                # counters mid-climb (a flat series rates as 0)
                per_wave = max(1, args.requests // 2)
                for wave in range(2):
                    futures = [backend.submit(inputs)
                               for _ in range(per_wave)]
                    for f in futures:
                        f.result()
                    time.sleep(2.5 * view.interval_s)
                members = write_diag_bundle(
                    args.output, view=view,
                    config={"command": "diag", "model": args.model,
                            "replicas": args.replicas,
                            "requests": args.requests,
                            "workers": args.workers,
                            "budget": getattr(args, "budget", None),
                            "host_budget": getattr(args, "host_budget",
                                                   None),
                            "fault": getattr(args, "fault", None)},
                    audit=args.audit)
    print(f"wrote diag bundle to {args.output} "
          f"({len(members)} members):")
    for member in members:
        print(f"  {member}")
    return 0


def _cmd_trace(args) -> int:
    """Compile + run one model under a tracer; write the trace artifact."""
    if args.log_level:
        configure_logging(args.log_level)
    graph = _load_model(args.model, args.batch, args.hw, args.seed)
    tracer = Tracer()
    with use_tracer(tracer):
        target = graph
        if not args.no_optimize:
            decomposed = decompose_graph(graph, DecompositionConfig(
                method=args.method, ratio=args.ratio, seed=args.seed))
            target, _report = optimize(decomposed)
        rng = np.random.default_rng(args.seed)
        inputs = {v.name: rng.normal(size=v.shape).astype(v.dtype.np)
                  for v in target.inputs}
        result = InferenceSession(target, tracer=tracer).run(inputs)
    out = Path(args.trace) if args.trace else Path(f"{graph.name}.trace.json")
    write_trace(tracer, out)

    profile = result.memory
    series = tracer.counter_series("memory", "live_bytes")
    ok = (series == [e.live_bytes for e in profile.events]
          and max(series, default=0) == profile.peak_internal_bytes)
    verdicts: dict[str, int] = {}
    for d in tracer.decisions:
        verdicts[d.verdict] = verdicts.get(d.verdict, 0) + 1
    print(f"traced {graph.name}: {len(tracer.spans)} spans, "
          f"{len(tracer.decisions)} decision events {verdicts}, "
          f"{len(tracer.counters)} memory samples")
    print(f"memory counter track {'matches' if ok else 'DOES NOT match'} the "
          f"executor profile (peak {profile.peak_internal_bytes / MIB:.2f} MiB)")
    print()
    print(metrics_markdown(tracer.metrics,
                           title=f"{graph.name} session metrics"))
    hint = (" (one JSON record per line)" if out.suffix == ".jsonl" else
            " (open at https://ui.perfetto.dev or chrome://tracing)")
    print(f"wrote trace to {out}{hint}")
    return 0 if ok else 1


def _cmd_profile(args) -> int:
    """Trace a few inferences and print the hot-path attribution."""
    if args.log_level:
        configure_logging(args.log_level)
    graph = _load_model(args.model, args.batch, args.hw, args.seed)
    tracer = Tracer()
    with use_tracer(tracer):
        target = graph
        if not args.no_optimize:
            decomposed = decompose_graph(graph, DecompositionConfig(
                method=args.method, ratio=args.ratio, seed=args.seed))
            target, _report = optimize(decomposed)
        rng = np.random.default_rng(args.seed)
        inputs = {v.name: rng.normal(size=v.shape).astype(v.dtype.np)
                  for v in target.inputs}
        session = InferenceSession(target, tracer=tracer)
        for _ in range(args.repeats):
            session.run(inputs)
    report = profile_tracer(tracer, model=target.name)
    if args.json:
        print(report.to_json())
    else:
        def table(stats, label):
            rows = [[s.key, s.count, f"{s.total_us / 1e3:.2f}",
                     f"{s.mean_us:.0f}", f"{s.share:.1%}",
                     f"{s.total_bytes / MIB:.2f}", f"{s.flops / 1e9:.3f}",
                     f"{s.intensity:.2f}", f"{s.gflops_per_s:.2f}",
                     f"{s.scratch_bytes / 1024:.0f}"] for s in stats]
            return format_table(
                [label, "count", "total ms", "mean us", "share", "MiB moved",
                 "GFLOP", "FLOP/B", "GFLOP/s", "scratch KiB"],
                rows, title=f"{target.name} hot {label}s "
                            f"({report.runs} traced run(s), "
                            f"{report.total_us / 1e3:.2f} ms attributed)")
        print(table(report.top_ops(args.top), "op"))
        print()
        print(table(report.top_nodes(args.top), "layer"))
    if args.flamegraph:
        path = write_collapsed_stacks(tracer, args.flamegraph)
        print(f"wrote collapsed stacks to {path} "
              f"(feed to flamegraph.pl or https://www.speedscope.app)",
              file=sys.stderr)
    if args.trace:
        out = write_trace(tracer, args.trace)
        print(f"wrote trace to {out}", file=sys.stderr)
    return 0


def _cmd_tune(args) -> int:
    graph = _load_model(args.model, args.batch, args.hw, args.seed)
    cache = TuneCache(args.cache_dir)
    decomposition = DecompositionConfig(method=args.method, ratio=args.ratio,
                                        seed=args.seed)
    temco = TeMCOConfig(concat_strategy=args.concat_strategy)
    config = TuneConfig(mode=args.mode, budget=args.budget,
                        repeats=args.repeats, seed=args.seed)
    _plan, record, hit = tune_model(graph, cache=cache,
                                    decomposition=decomposition, temco=temco,
                                    config=config, force=args.force)
    print(f"tune cache {'hit' if hit else 'miss'} for {graph.name} "
          f"(key {record.key})")
    if record.sites:
        rows = [[s.site_key, s.block_size, s.spatial_tile,
                 s.seconds * 1e3, s.baseline_seconds * 1e3, s.trials]
                for s in record.sites]
        print(format_table(
            ["site", "block", "tile", "best ms", "default ms", "trials"],
            rows, title=f"tuned tiles ({record.mode} mode, "
                        f"{record.total_trials} trials)"))
    else:
        print("no fusion sites to tune")
    if record.tuned_seconds is not None and record.default_seconds is not None:
        verdict = (" — fell back to default tiles"
                   if record.fell_back_to_default else "")
        print(f"whole graph: tuned {record.tuned_seconds * 1e3:.2f} ms vs "
              f"default {record.default_seconds * 1e3:.2f} ms{verdict}")
    if record.peak_internal_bytes is not None:
        print(f"peak internal: {record.peak_internal_bytes / MIB:.2f} MiB "
              f"(tiles are scratch — unchanged by tuning)")
    print(f"cache entry: {cache.record_path(record.key)}")
    print(f"compiled plan: {cache.plan_path(record.key)}")
    return 0


def _cmd_memcheck_budget(args, models: list[str]) -> int:
    """``repro memcheck --budget``: budgeted-run conformance per model."""
    from .obs.audit import audit_budgeted

    audits = []
    for model in models:
        graph = build_model(model, batch=args.batch, hw=args.hw,
                            seed=args.seed)
        reference = estimate_peak_internal(graph)
        budget = parse_budget(args.budget, reference=reference)
        audits.append(audit_budgeted(graph, budget, model=model,
                                     seed=args.seed))
    if args.json:
        print(json.dumps([ba.to_dict() for ba in audits], indent=1,
                         sort_keys=True))
        return 0 if all(ba.passed for ba in audits) else 1
    rows = [[ba.model, ba.budget_bytes, ba.planned_peak_bytes,
             ba.measured_peak_bytes, ba.spills, ba.remats,
             "ok" if ba.passed else "FAIL"] for ba in audits]
    print(format_table(
        ["model", "budget B", "planned B", "measured B", "spills", "remats",
         "verdict"],
        rows, title=f"budgeted-run conformance (budget {args.budget}, "
                    f"batch {args.batch}, hw {args.hw})"))
    print()
    for ba in audits:
        status = "PASS" if ba.passed else "FAIL"
        print(f"{status} {ba.model}: baseline "
              f"{format_bytes(ba.baseline_peak_bytes)} -> budgeted "
              f"{format_bytes(ba.measured_peak_bytes)} "
              f"({format_bytes(ba.spilled_bytes)} spilled)")
        for finding in ba.findings:
            marker = "!" if finding.severity == "error" else "~"
            print(f"  {marker} [{finding.kind}] {finding.message}")
    failed = [ba.model for ba in audits if not ba.passed]
    print()
    if failed:
        print(f"memcheck FAILED for {len(failed)}/{len(audits)} model(s): "
              f"{', '.join(failed)}")
        return 1
    print(f"memcheck passed: {len(audits)} budgeted run(s) — measured peak "
          f"within budget, bitwise-identical outputs, ledger consistent")
    return 0


def _cmd_memcheck(args) -> int:
    from .obs.audit import audit_zoo

    models = args.models or list(MODEL_ZOO)
    unknown = [m for m in models if m not in MODEL_ZOO]
    if unknown:
        print(f"memcheck: unknown zoo model(s) {unknown}; "
              f"see `repro models`", file=sys.stderr)
        return 2
    if args.budget:
        return _cmd_memcheck_budget(args, models)
    audits = audit_zoo(models, batch=args.batch, hw=args.hw,
                       ratio=args.ratio, method=args.method, seed=args.seed,
                       tolerance=args.tolerance)
    if args.json:
        print(json.dumps([ma.to_dict() for ma in audits], indent=1,
                         sort_keys=True))
        return 0 if all(ma.passed for ma in audits) else 1
    rows = []
    for ma in audits:
        for ga in (ma.original, ma.optimized):
            rows.append([ma.model, ga.variant, ga.measured_peak_bytes,
                         ga.predicted_peak_bytes, ga.arena_bytes,
                         ga.ledger_events,
                         "ok" if ga.passed else "FAIL"])
    print(format_table(
        ["model", "variant", "measured B", "predicted B", "arena B",
         "events", "verdict"],
        rows, title=f"memory conformance audit (batch {args.batch}, "
                    f"hw {args.hw}, tolerance {args.tolerance:.2%})"))
    print()
    for ma in audits:
        status = "PASS" if ma.passed else "FAIL"
        print(f"{status} {ma.model}: peak reduction {ma.reduction_pct:.1f}% "
              f"(measured, {ma.optimized.variant})")
        for finding in ma.all_findings():
            marker = "!" if finding.severity == "error" else "~"
            print(f"  {marker} [{finding.kind}] {finding.message}")
    failed = [ma.model for ma in audits if not ma.passed]
    print()
    if failed:
        print(f"memcheck FAILED for {len(failed)}/{len(audits)} model(s): "
              f"{', '.join(failed)}")
        return 1
    print(f"memcheck passed: {len(audits)} model(s), both variants each — "
          f"measured == predicted, ledger consistent, arenas hold")
    return 0


def _cmd_bench_suite(args) -> int:
    """``repro bench`` without a figure: measure / write / gate."""
    if args.compare:
        baseline = load_bench(args.compare)
        config = BenchConfig.from_dict(baseline["config"])
        print(f"bench gate: re-measuring {len(config.models)} model(s) with "
              f"the baseline's config (batch {config.batch}, hw {config.hw}, "
              f"{config.repeats} repeats)")
        current = collect_bench(config, name=args.name)
        if args.out:
            write_bench(current, args.out)
            print(f"wrote current measurements to {args.out}")
        comparison = compare_bench(
            current, baseline,
            peak_tolerance_pct=args.peak_tolerance,
            latency_tolerance_pct=args.latency_tolerance)
        print(format_comparison(comparison))
        return 0 if comparison.passed else 1
    config = BenchConfig(models=tuple(args.models or DEFAULT_MODELS),
                         batch=args.batch, hw=args.hw, repeats=args.repeats,
                         budget=args.budget, fleet=args.fleet)
    doc = collect_bench(config, name=args.name)
    headers = ["model", "variant", "peak B", "p50 ms", "p95 ms", "p99 ms"]
    if config.budget:
        # informational: the planner-enforced peak under --budget
        headers.append(f"peak B @ {config.budget}")
    rows = []
    for model, entry in sorted(doc["models"].items()):
        for variant, v in sorted(entry["variants"].items()):
            row = [model, variant, v["peak_bytes"],
                   f"{v['latency_ms']['p50']:.2f}",
                   f"{v['latency_ms']['p95']:.2f}",
                   f"{v['latency_ms']['p99']:.2f}"]
            if config.budget:
                budgeted = v.get("budgeted", {})
                row.append(budgeted["measured_peak_bytes"]
                           if budgeted.get("feasible") else "infeasible")
            rows.append(row)
    print(format_table(
        headers, rows,
        title=f"bench suite {doc['name']!r} ({doc['created_at']})"))
    for model, entry in sorted(doc["models"].items()):
        print(f"{model}: {entry['reduction_pct']:.1f}% peak reduction "
              f"({entry['best_variant']})")
    if config.fleet and "fleet" in doc:
        fleet = doc["fleet"]
        rows = []
        for replicas, r in sorted(fleet["replicas"].items()):
            rows.append([replicas,
                         "yes" if r.get("feasible") else "no",
                         r.get("replica_budget_bytes", "-"),
                         f"{r['throughput_rps']:.1f}"
                         if r.get("feasible") else "-",
                         f"{r['p50_ms']:.2f}" if r.get("feasible") else "-",
                         r.get("errors", "-")])
        print()
        print(format_table(
            ["replicas", "feasible", "budget B/replica", "req/s", "p50 ms",
             "errors"],
            rows,
            title=f"fleet throughput, {fleet['model']} under "
                  f"{format_bytes(fleet['host_budget_bytes'])} host budget "
                  f"(informational, never gated)"))
        if "speedup" in fleet:
            print(f"3-replica speedup over 1: {fleet['speedup']:.2f}x")
    if args.json:
        out = args.out or Path(f"BENCH_{args.name}.json")
        write_bench(doc, out)
        print(f"wrote bench document to {out}")
    return 0


def _cmd_bench(args) -> int:
    if args.log_level:
        configure_logging(args.log_level)
    if args.figure is None:
        return _cmd_bench_suite(args)
    tuned_ctx = contextlib.nullcontext()
    if args.tuned:
        cache = TuneCache(args.cache_dir)
        print(f"bench: consulting tune cache at {cache.dir} (lookup only; "
              f"run `repro tune MODEL` to populate)")
        tuned_ctx = use_tuned_fusion(
            lambda original, temco: cached_overrides(
                original, cache=cache, temco=temco))
    with tuned_ctx, trace_figures(args.trace):
        if args.figure == "fig4":
            result = figure4(args.model or "unet", batch=args.batch)
            rows = [[variant, i, mib] for variant, series in result.timelines.items()
                    for i, mib in series]
            print(format_table(["variant", "layer", "live MiB"], rows,
                               title=f"Figure 4 ({result.model}), peaks: {result.peaks}"))
        elif args.figure == "fig10":
            models = [args.model] if args.model else None
            rows = figure10(models=models, batch=args.batch)
            print(format_table(
                ["model", "variant", "weights MiB", "internal MiB"],
                [[r.model, PAPER_LABELS[r.variant], r.weight_mib, r.internal_mib]
                 for r in rows], title="Figure 10"))
            print(f"geomean internal reduction: "
                  f"{internal_reduction_geomean(rows):.1%} (paper: 75.7%)")
        elif args.figure == "fig11":
            models = [args.model] if args.model else None
            rows = figure11(models=models, batches=(args.batch,), hw=args.hw,
                            repeats=args.repeats)
            print(format_table(
                ["model", "variant", "batch", "time ms", "p50 ms", "p95 ms",
                 "p99 ms"],
                [[r.model, r.variant, r.batch, r.seconds * 1e3,
                  r.p50_seconds * 1e3, r.p95_seconds * 1e3,
                  r.p99_seconds * 1e3] for r in rows], title="Figure 11"))
            print(f"overhead ratios: {overhead_ratios(rows)}")
        else:
            models = [args.model] if args.model else None
            rows = figure12(models=models, batch=args.batch, hw=args.hw)
            print(format_table(
                ["model", "variant", "metric", "agreement"],
                [[r.model, PAPER_LABELS[r.variant], r.metric,
                  r.agreement_with_decomposed] for r in rows], title="Figure 12"))
    if args.trace:
        print(f"wrote trace to {args.trace}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TeMCO reproduction toolkit (ICPP 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the benchmark zoo").set_defaults(
        fn=_cmd_models)

    def common(p):
        p.add_argument("model", help="zoo model name or saved .npz graph")
        p.add_argument("--batch", type=int, default=4)
        p.add_argument("--hw", type=int, default=None)
        p.add_argument("--seed", type=int, default=0)

    def obs_flags(p):
        p.add_argument("--trace", type=Path, default=None, metavar="PATH",
                       help="dump a Chrome trace (or JSONL for *.jsonl) of "
                            "this command")
        p.add_argument("--log-level", dest="log_level", default=None,
                       choices=("debug", "info", "warning", "error"),
                       help="wire stdlib logging for the repro.* loggers")

    def budget_flag(p):
        p.add_argument("--budget", default=None, metavar="BYTES",
                       help="enforce an internal-tensor memory budget via "
                            "the repro.plan planner; bytes, a KiB/MiB/GiB "
                            "suffix, or NN%% of the unplanned predicted "
                            "peak (e.g. 256MiB, 60%%)")

    def tune_flags(p, *, no_tune: bool = True):
        p.add_argument("--tuned", action="store_true",
                       help="use autotuned fused-kernel tiles from the "
                            "tuning cache (see `repro tune`)")
        if no_tune:
            p.add_argument("--no-tune", action="store_true", dest="no_tune",
                           help="with --tuned: never tune on a cache miss, "
                                "fall back to default tiles")
        p.add_argument("--cache-dir", type=Path, default=None,
                       dest="cache_dir", metavar="DIR",
                       help="tuning cache directory (default "
                            "$REPRO_TUNE_CACHE or ~/.cache/repro-tune)")

    p = sub.add_parser("inspect", help="print IR and memory estimates")
    common(p)
    p.add_argument("--ir", action="store_true", help="dump the full IR")
    p.set_defaults(fn=_cmd_inspect)

    p = sub.add_parser("optimize", help="decompose + TeMCO-optimize")
    common(p)
    obs_flags(p)
    p.add_argument("--method", choices=("tucker", "cp", "tt"), default="tucker")
    p.add_argument("--ratio", type=float, default=0.1)
    p.add_argument("--rank-policy", choices=("ratio", "energy"),
                   default="ratio", dest="rank_policy")
    p.add_argument("--energy", type=float, default=0.9,
                   help="spectral-energy threshold for --rank-policy energy")
    p.add_argument("--concat-strategy", choices=("merge", "split", "none"),
                   default="merge")
    tune_flags(p)
    p.add_argument("-o", "--output", type=Path, default=None)
    p.set_defaults(fn=_obs_wrap(_cmd_optimize))

    p = sub.add_parser("run", help="run one inference with profiling")
    common(p)
    obs_flags(p)
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--method", choices=("tucker", "cp", "tt"), default="tucker",
                   help="decomposition method for the --tuned plan lookup")
    p.add_argument("--ratio", type=float, default=0.1,
                   help="decomposition ratio for the --tuned plan lookup")
    budget_flag(p)
    tune_flags(p)
    p.set_defaults(fn=_obs_wrap(_cmd_run))

    p = sub.add_parser("plan", help="budget-constrained memory plan: "
                                    "spill/prefetch/remat schedule, cost "
                                    "model, predicted peak")
    common(p)
    obs_flags(p)
    budget_flag(p)
    p.add_argument("--optimize", action="store_true",
                   help="plan the decomposed + TeMCO-optimized graph "
                        "instead of the raw model")
    p.add_argument("--method", choices=("tucker", "cp", "tt"), default="tucker",
                   help="decomposition method for --optimize")
    p.add_argument("--ratio", type=float, default=0.1,
                   help="decomposition ratio for --optimize")
    p.add_argument("--spill-gbps", type=float, default=12.0,
                   dest="spill_gbps", metavar="GBPS",
                   help="modelled host<->device spill bandwidth in GB/s "
                        "(default 12)")
    p.add_argument("--compute-gflops", type=float, default=2000.0,
                   dest="compute_gflops", metavar="GFLOPS",
                   help="modelled recompute throughput in GFLOP/s "
                        "(default 2000)")
    p.add_argument("--json", action="store_true",
                   help="print the full plan as JSON (for scripts/CI)")
    p.set_defaults(fn=_obs_wrap(_cmd_plan))

    p = sub.add_parser("tune", help="autotune fused-kernel tiles and cache "
                                    "the compiled plan")
    common(p)
    obs_flags(p)
    p.add_argument("--budget", type=int, default=12,
                   help="measured trials per site (default 12)")
    p.add_argument("--mode", choices=("per-site", "global"),
                   default="per-site")
    p.add_argument("--repeats", type=int, default=2,
                   help="timing repeats per trial (default 2)")
    p.add_argument("--method", choices=("tucker", "cp", "tt"), default="tucker")
    p.add_argument("--ratio", type=float, default=0.1)
    p.add_argument("--concat-strategy", choices=("merge", "split", "none"),
                   default="merge")
    p.add_argument("--force", action="store_true",
                   help="retune even on a cache hit")
    p.add_argument("--cache-dir", type=Path, default=None, dest="cache_dir",
                   metavar="DIR",
                   help="tuning cache directory (default $REPRO_TUNE_CACHE "
                        "or ~/.cache/repro-tune)")
    p.set_defaults(fn=_obs_wrap(_cmd_tune))

    p = sub.add_parser("trace", help="decompose + optimize + run one "
                                     "inference with full tracing")
    common(p)
    obs_flags(p)
    p.add_argument("--method", choices=("tucker", "cp", "tt"), default="tucker")
    p.add_argument("--ratio", type=float, default=0.1)
    p.add_argument("--no-optimize", action="store_true", dest="no_optimize",
                   help="trace the raw model without decompose+TeMCO")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("profile", help="hot-path profiler: per-op/per-layer "
                                       "time, bytes, arithmetic intensity, "
                                       "flamegraph export")
    common(p)
    obs_flags(p)
    p.add_argument("--method", choices=("tucker", "cp", "tt"), default="tucker")
    p.add_argument("--ratio", type=float, default=0.1)
    p.add_argument("--no-optimize", action="store_true", dest="no_optimize",
                   help="profile the raw model without decompose+TeMCO")
    p.add_argument("--repeats", type=int, default=3,
                   help="traced inference runs to aggregate (default 3)")
    p.add_argument("--top", type=int, default=12,
                   help="rows per ranking table (default 12)")
    p.add_argument("--flamegraph", type=Path, default=None, metavar="PATH",
                   help="write collapsed-stack flamegraph input "
                        "(flamegraph.pl / speedscope format)")
    p.add_argument("--json", action="store_true",
                   help="print the profile report as JSON")
    p.set_defaults(fn=_cmd_profile)

    def serve_flags(p):
        p.add_argument("--workers", type=int, default=1,
                       help="inference worker threads (default 1)")
        p.add_argument("--max-queue", type=int, default=64, dest="max_queue",
                       help="admission queue bound in requests; a full "
                            "queue rejects with Overloaded (default 64)")
        p.add_argument("--max-wait-ms", type=float, default=2.0,
                       dest="max_wait_ms",
                       help="micro-batch coalescing window (default 2 ms)")
        p.add_argument("--deadline-ms", type=float, default=None,
                       dest="deadline_ms",
                       help="default per-request deadline; expired requests "
                            "are shed (default: no deadline)")
        p.add_argument("--no-batching", action="store_true",
                       dest="no_batching",
                       help="serve one request per micro-batch (the "
                            "baseline dynamic batching is compared against)")
        p.add_argument("--method", choices=("tucker", "cp", "tt"),
                       default="tucker",
                       help="decomposition method for the --tuned plan lookup")
        p.add_argument("--ratio", type=float, default=0.1,
                       help="decomposition ratio for the --tuned plan lookup")
        budget_flag(p)
        p.add_argument("--slo", action="append", default=None, metavar="SPEC",
                       help="service-level objective, repeatable: "
                            "availability:TARGET[:WINDOW_S] or "
                            "latency:THRESHOLD_MS:TARGET[:WINDOW_S] "
                            "(e.g. latency:50:0.95); burn-rate gauges land "
                            "on GET /metrics, loadgen exits non-zero on "
                            "violation")

    def frontend_flags(p):
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=8100,
                       help="listen port; 0 picks an ephemeral port")
        p.add_argument("--duration", type=float, default=None,
                       help="serve for N seconds then exit (default: until "
                            "SIGTERM/SIGINT)")
        p.add_argument("--drain-timeout", type=float, default=30.0,
                       dest="drain_timeout", metavar="S",
                       help="graceful-drain budget on shutdown: in-flight "
                            "requests get this long to finish (default 30)")

    def fleet_flags(p):
        p.add_argument("--host-budget", default=None, dest="host_budget",
                       metavar="BYTES",
                       help="shared internal-tensor budget split evenly "
                            "across the replicas (parse_budget grammar; "
                            "NN%% is relative to replicas x one replica's "
                            "unplanned peak)")
        p.add_argument("--fault", default=None, metavar="SPEC",
                       help="deterministic fault injection for failover "
                            "testing: REPLICA:KIND:AFTER[:SLOW_MS] with "
                            "KIND in kill|stall|slow (e.g. 1:kill:5)")

    p = sub.add_parser("serve", help="dynamic-batching inference server "
                                     "with a JSON/HTTP frontend")
    common(p)
    serve_flags(p)
    tune_flags(p, no_tune=False)
    frontend_flags(p)
    obs_flags(p)
    p.set_defaults(fn=_obs_wrap(_cmd_serve))

    p = sub.add_parser("fleet", help="multi-replica fleet: shared host "
                                     "budget, least-outstanding routing, "
                                     "hedged retries, one HTTP frontend")
    common(p)
    serve_flags(p)
    tune_flags(p, no_tune=False)
    p.add_argument("--replicas", type=int, default=2,
                   help="replica count (default 2)")
    fleet_flags(p)
    frontend_flags(p)
    obs_flags(p)
    p.set_defaults(fn=_obs_wrap(_cmd_fleet))

    p = sub.add_parser("loadgen", help="drive an in-process server with "
                                       "synthetic load; report p50/p95/p99")
    common(p)
    serve_flags(p)
    tune_flags(p, no_tune=False)
    p.add_argument("--mode", choices=("closed", "open"), default="closed",
                   help="closed: fixed concurrency; open: Poisson arrivals")
    p.add_argument("--requests", type=int, default=64)
    p.add_argument("--concurrency", type=int, default=4,
                   help="closed-loop client count (default 4)")
    p.add_argument("--rate", type=float, default=200.0,
                   help="open-loop arrival rate, req/s (default 200)")
    p.add_argument("--samples", type=int, default=1,
                   help="samples per request (default 1)")
    p.add_argument("--fleet", type=int, default=0, metavar="K",
                   help="drive a K-replica fleet through the router "
                        "instead of a single server (default 0: single)")
    fleet_flags(p)
    p.add_argument("--metrics-out", type=Path, default=None,
                   dest="metrics_out", metavar="PATH",
                   help="write the end-of-run Prometheus text exposition "
                        "to PATH (scrape-equivalent of GET /metrics)")
    p.add_argument("--detect-anomalies", action="store_true",
                   dest="detect_anomalies",
                   help="run the fleet anomaly detectors (latency "
                        "regression, memory drift, drop spikes, replica "
                        "outliers) over the run and report findings")
    p.add_argument("--fail-on-anomaly", action="store_true",
                   dest="fail_on_anomaly",
                   help="exit non-zero when any anomaly fires (implies "
                        "--detect-anomalies) — the CI outlier gate")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON (for scripts/CI)")
    obs_flags(p)
    p.set_defaults(fn=_obs_wrap(_cmd_loadgen))

    p = sub.add_parser("top", help="live fleet dashboard: poll GET /fleetz "
                                   "and repaint per-replica QPS/latency/"
                                   "memory plus anomalies")
    p.add_argument("--url", default=None, metavar="URL",
                   help="full /fleetz URL (overrides --host/--port)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8100,
                   help="port the serve/fleet frontend listens on "
                        "(default 8100)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="refresh interval in seconds (default 1)")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="per-poll HTTP timeout in seconds (default 5)")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit instead of repainting")
    p.add_argument("--json", action="store_true",
                   help="print one raw /fleetz document as JSON and exit "
                        "(implies --once; for scripts/CI)")
    p.add_argument("--no-color", action="store_true", dest="no_color",
                   help="plain-text frames (no ANSI colors)")
    p.set_defaults(fn=_cmd_top)

    p = sub.add_parser("diag", help="capture a diagnostic snapshot bundle: "
                                    "merged trace, time-series dump, "
                                    "metrics, SLO state, anomalies, memory "
                                    "plan, build info")
    common(p)
    serve_flags(p)
    tune_flags(p, no_tune=False)
    p.add_argument("--replicas", type=int, default=0, metavar="K",
                   help="snapshot a K-replica fleet instead of a single "
                        "server (default 0: single)")
    fleet_flags(p)
    p.add_argument("--requests", type=int, default=8,
                   help="warm-up requests to drive before the snapshot "
                        "(default 8)")
    p.add_argument("--audit", action="store_true",
                   help="with --budget: include a budgeted-run conformance "
                        "audit in the bundle (runs the graph twice more)")
    p.add_argument("-o", "--output", type=Path,
                   default=Path("repro-diag.tar.gz"), metavar="PATH",
                   help="bundle path (default repro-diag.tar.gz)")
    p.set_defaults(fn=_cmd_diag)

    p = sub.add_parser("export", help="export DOT graph / CSV timeline / "
                                      "Markdown memory report")
    common(p)
    p.add_argument("what", choices=("dot", "timeline", "report"))
    p.add_argument("-o", "--output", type=Path, required=True)
    p.set_defaults(fn=_cmd_export)

    p = sub.add_parser("selfcheck", help="quick install sanity scorecard")
    p.set_defaults(fn=lambda args: 0 if all(
        r.passed for r in __import__("repro.selfcheck",
                                     fromlist=["run_selfcheck"]).run_selfcheck())
        else 1)

    p = sub.add_parser("memcheck", help="memory conformance audit: ledger "
                                        "replay, predicted-vs-measured peak, "
                                        "arena bounds, per zoo model")
    p.add_argument("models", nargs="*", metavar="MODEL",
                   help="zoo models to audit (default: the whole zoo)")
    p.add_argument("--batch", type=int, default=2,
                   help="audit batch size (default 2: small and fast)")
    p.add_argument("--hw", type=int, default=32,
                   help="input resolution (default 32)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--ratio", type=float, default=0.1)
    p.add_argument("--method", choices=("tucker", "cp", "tt"),
                   default="tucker")
    p.add_argument("--tolerance", type=float, default=0.0,
                   help="allowed relative measured-vs-predicted peak "
                        "deviation (default 0.0: bit-exact)")
    budget_flag(p)
    p.add_argument("--json", action="store_true",
                   help="print the audit results as JSON (for scripts/CI)")
    obs_flags(p)
    p.set_defaults(fn=_obs_wrap(_cmd_memcheck))

    p = sub.add_parser("bench", help="regenerate a paper figure, or (with "
                                     "no figure) run the bench suite / "
                                     "regression gate")
    p.add_argument("figure", nargs="?", default=None,
                   choices=("fig4", "fig10", "fig11", "fig12"),
                   help="paper figure to regenerate; omit to measure the "
                        "bench suite (see --json / --compare)")
    p.add_argument("--model", default=None)
    p.add_argument("--batch", type=int, default=4)
    p.add_argument("--hw", type=int, default=32,
                   help="input resolution for fig11/fig12 (default 32)")
    p.add_argument("--repeats", type=int, default=2,
                   help="timing repeats per fig11 measurement (default 2)")
    p.add_argument("--models", nargs="+", default=None, metavar="MODEL",
                   help="suite mode: models to measure (default: "
                        f"{' '.join(DEFAULT_MODELS)})")
    p.add_argument("--json", action="store_true",
                   help="suite mode: write the measurements as "
                        "BENCH_<name>.json")
    p.add_argument("--name", default="current",
                   help="suite mode: document name (default 'current')")
    p.add_argument("--out", type=Path, default=None, metavar="PATH",
                   help="suite mode: explicit output path for --json "
                        "(default BENCH_<name>.json)")
    p.add_argument("--compare", nargs="?", const="BENCH_baseline.json",
                   default=None, metavar="BASELINE",
                   help="suite mode: re-measure with BASELINE's config and "
                        "fail on peak regressions (default baseline: "
                        "BENCH_baseline.json)")
    p.add_argument("--peak-tolerance", type=float, default=0.0,
                   dest="peak_tolerance", metavar="PCT",
                   help="--compare: allowed peak growth in percent "
                        "(default 0.0: any growth fails)")
    p.add_argument("--latency-tolerance", type=float, default=None,
                   dest="latency_tolerance", metavar="PCT",
                   help="--compare: gate p50 latency at PCT percent growth "
                        "(default: latency is informational only)")
    p.add_argument("--budget", default=None, metavar="BYTES",
                   help="suite mode: add an informational budgeted-peak "
                        "column (repro.plan enforced; NN%% is relative to "
                        "each variant's own peak; never gated)")
    p.add_argument("--fleet", action="store_true",
                   help="suite mode: add an informational fleet-throughput "
                        "comparison (1 vs 3 replicas under one shared host "
                        "budget via the repro.fleet router; never gated)")
    obs_flags(p)
    tune_flags(p, no_tune=False)
    p.set_defaults(fn=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BudgetSyntaxError as exc:
        # a misspelled --budget is a usage error, same exit code as
        # argparse's own rejections
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
